package analysis

// dataflow.go is the generic worklist solver the v2 analyzers run
// their lattices on. A Problem describes one monotone dataflow
// problem over a CFG; Solve iterates transfer functions to a fixpoint.
//
// Contract (see dataflow_test.go):
//
//   - Join must be pure: it returns the least upper bound without
//     mutating either argument. Transfer must likewise not mutate its
//     input fact. The solver relies on this for change detection.
//   - Join must be monotone (facts only grow toward the top of the
//     lattice); with a finite-height lattice the worklist terminates.
//     A defensive step bound guards solver clients that violate this:
//     the solver then stops propagating rather than spinning forever.
//   - Facts propagate only along paths from the boundary block (Entry
//     for forward problems, Exit for backward ones); blocks with no
//     such path keep Bottom.

// Problem describes one dataflow problem with fact type F.
type Problem[F any] struct {
	// Backward flips the direction: facts flow from Exit along
	// predecessor edges, and Transfer sees the fact at block exit.
	Backward bool
	// Bottom is the least fact (the identity of Join).
	Bottom func() F
	// Boundary is the fact entering the boundary block.
	Boundary func() F
	// Transfer applies one block's effect to the incoming fact.
	Transfer func(b *Block, in F) F
	// Join computes the least upper bound of two facts, pure.
	Join func(a, b F) F
	// Equal reports whether two facts are equal (fixpoint test).
	Equal func(a, b F) bool
}

// Solve runs the worklist algorithm to fixpoint and returns the fact
// flowing INTO each block along the analysis direction (indexed by
// Block.Index): the fact at block entry for forward problems, the
// fact at block exit for backward ones.
func Solve[F any](g *CFG, p Problem[F]) []F {
	n := len(g.Blocks)
	in := make([]F, n)
	for i := range in {
		in[i] = p.Bottom()
	}
	boundary := g.Entry
	next := func(b *Block) []*Block { return b.Succs }
	if p.Backward {
		boundary = g.Exit
		next = func(b *Block) []*Block { return b.Preds }
	}
	in[boundary.Index] = p.Join(in[boundary.Index], p.Boundary())

	// Seed the worklist with every block reachable from the boundary
	// (in BFS order, so facts tend to flow in one pass): each must be
	// transferred at least once — a block whose in-fact never moves off
	// Bottom still has gen effects its successors depend on.
	seen := make([]bool, n)
	seen[boundary.Index] = true
	order := []*Block{boundary}
	for i := 0; i < len(order); i++ {
		for _, s := range next(order[i]) {
			if !seen[s.Index] {
				seen[s.Index] = true
				order = append(order, s)
			}
		}
	}
	queue := make([]int, 0, len(order))
	queued := make([]bool, n)
	for _, b := range order {
		queue = append(queue, b.Index)
		queued[b.Index] = true
	}
	// Defensive bound: a monotone finite-height lattice converges far
	// below this; a buggy client stops instead of looping forever.
	budget := n*n*64 + 4096
	for len(queue) > 0 && budget > 0 {
		budget--
		idx := queue[0]
		queue = queue[1:]
		queued[idx] = false
		b := g.Blocks[idx]
		out := p.Transfer(b, in[idx])
		for _, s := range next(b) {
			j := p.Join(in[s.Index], out)
			if p.Equal(j, in[s.Index]) {
				continue
			}
			in[s.Index] = j
			if !queued[s.Index] {
				queued[s.Index] = true
				queue = append(queue, s.Index)
			}
		}
	}
	return in
}
