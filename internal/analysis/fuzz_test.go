package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzParseIgnoreDirective asserts the suppression parser's contract
// on arbitrary input: it never panics, a malformed directive is never
// accepted (ok implies a non-empty whitespace-free rule and a
// non-empty reason), and acceptance implies the canonical "//lint:ignore"
// prefix — so no fuzzer-invented comment can silently suppress a
// finding.
func FuzzParseIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore floateq exact zero is a flag")
	f.Add("//lint:ignore determinism")
	f.Add("// lint:ignore floateq spaced out")
	f.Add("//lint:ignorefloateq glued")
	f.Add("//lint:ignore  rule  multi word reason")
	f.Add("/*lint:ignore rule reason*/")
	f.Add("//nolint:everything")
	f.Add("//lint:ignore\trule\ttab separated")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		rule, reason, ok := ParseIgnoreDirective(text)
		if !ok {
			if rule != "" || reason != "" {
				t.Fatalf("rejected input %q returned non-empty parts (%q, %q)", text, rule, reason)
			}
			return
		}
		if rule == "" || reason == "" {
			t.Fatalf("accepted %q with empty rule/reason (%q, %q)", text, rule, reason)
		}
		if strings.IndexFunc(rule, unicode.IsSpace) >= 0 {
			t.Fatalf("accepted %q with whitespace in rule %q", text, rule)
		}
		if !strings.HasPrefix(text, "//lint:ignore") {
			t.Fatalf("accepted %q without the canonical prefix", text)
		}
	})
}

// FuzzEmitJSON asserts the -json emitter's contract on arbitrary
// diagnostic content: it never panics, always produces a valid JSON
// array (never null), and the decoded array round-trips the input
// values in the deterministic sorted order.
func FuzzEmitJSON(f *testing.F) {
	f.Add("b.go", 3, 1, "floateq", "msg")
	f.Add("a.go", 7, 2, "determinism", "uniçode \"quotes\" <html> \x00")
	f.Add("", 0, 0, "", "")
	f.Add("z.go", -1, -1, "hookcost", strings.Repeat("x", 4096))
	f.Fuzz(func(t *testing.T, file string, line, col int, rule, msg string) {
		ds := []Diagnostic{
			{File: file, Line: line, Col: col, Rule: rule, Message: msg},
			{File: "zz.go", Line: 1, Col: 1, Rule: "errwrap", Message: "fixed"},
		}
		var buf bytes.Buffer
		if err := EmitJSON(&buf, ds); err != nil {
			t.Fatalf("EmitJSON error: %v", err)
		}
		var back []Diagnostic
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.Bytes())
		}
		if len(back) != len(ds) {
			t.Fatalf("round-trip length %d, want %d", len(back), len(ds))
		}
		// Bitwise round-trip only holds for valid UTF-8: the encoder
		// (correctly) coerces stray bytes to U+FFFD.
		if !utf8.ValidString(file) || !utf8.ValidString(rule) || !utf8.ValidString(msg) {
			return
		}
		sorted := make([]Diagnostic, len(ds))
		copy(sorted, ds)
		sortDiagnostics(sorted)
		for i := range sorted {
			if back[i] != sorted[i] {
				t.Fatalf("round-trip[%d] = %+v, want %+v", i, back[i], sorted[i])
			}
		}
	})
}

// TestEmitJSONEmpty pins the empty-input representation: an array,
// not null.
func TestEmitJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("EmitJSON(nil) = %q, want %q", got, "[]")
	}
}
