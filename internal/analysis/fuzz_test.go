package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzParseIgnoreDirective asserts the suppression parser's contract
// on arbitrary input: it never panics, a malformed directive is never
// accepted (ok implies a non-empty whitespace-free rule and a
// non-empty reason), and acceptance implies the canonical "//lint:ignore"
// prefix — so no fuzzer-invented comment can silently suppress a
// finding.
func FuzzParseIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore floateq exact zero is a flag")
	f.Add("//lint:ignore determinism")
	f.Add("// lint:ignore floateq spaced out")
	f.Add("//lint:ignorefloateq glued")
	f.Add("//lint:ignore  rule  multi word reason")
	f.Add("/*lint:ignore rule reason*/")
	f.Add("//nolint:everything")
	f.Add("//lint:ignore\trule\ttab separated")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		rule, reason, ok := ParseIgnoreDirective(text)
		if !ok {
			if rule != "" || reason != "" {
				t.Fatalf("rejected input %q returned non-empty parts (%q, %q)", text, rule, reason)
			}
			return
		}
		if rule == "" || reason == "" {
			t.Fatalf("accepted %q with empty rule/reason (%q, %q)", text, rule, reason)
		}
		if strings.IndexFunc(rule, unicode.IsSpace) >= 0 {
			t.Fatalf("accepted %q with whitespace in rule %q", text, rule)
		}
		if !strings.HasPrefix(text, "//lint:ignore") {
			t.Fatalf("accepted %q without the canonical prefix", text)
		}
	})
}

// FuzzEmitJSON asserts the -json emitter's contract on arbitrary
// diagnostic content: it never panics, always produces a valid JSON
// array (never null), and the decoded array round-trips the input
// values in the deterministic sorted order.
func FuzzEmitJSON(f *testing.F) {
	f.Add("b.go", 3, 1, "floateq", "msg")
	f.Add("a.go", 7, 2, "determinism", "uniçode \"quotes\" <html> \x00")
	f.Add("", 0, 0, "", "")
	f.Add("z.go", -1, -1, "hookcost", strings.Repeat("x", 4096))
	f.Fuzz(func(t *testing.T, file string, line, col int, rule, msg string) {
		ds := []Diagnostic{
			{File: file, Line: line, Col: col, Rule: rule, Message: msg},
			{File: "zz.go", Line: 1, Col: 1, Rule: "errwrap", Message: "fixed"},
		}
		var buf bytes.Buffer
		if err := EmitJSON(&buf, ds); err != nil {
			t.Fatalf("EmitJSON error: %v", err)
		}
		var back []Diagnostic
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.Bytes())
		}
		if len(back) != len(ds) {
			t.Fatalf("round-trip length %d, want %d", len(back), len(ds))
		}
		// Bitwise round-trip only holds for valid UTF-8: the encoder
		// (correctly) coerces stray bytes to U+FFFD.
		if !utf8.ValidString(file) || !utf8.ValidString(rule) || !utf8.ValidString(msg) {
			return
		}
		sorted := make([]Diagnostic, len(ds))
		copy(sorted, ds)
		sortDiagnostics(sorted)
		for i := range sorted {
			if back[i] != sorted[i] {
				t.Fatalf("round-trip[%d] = %+v, want %+v", i, back[i], sorted[i])
			}
		}
	})
}

// FuzzCFGBuild asserts the CFG builder's contract on every function
// body the parser accepts: it never panics, every leaf statement
// lands in exactly one block, block indexes round-trip, and Preds
// mirror Succs. The builder is purely syntactic, so parseability is
// the only precondition — type errors, undefined names, and invalid
// branch placements must all be tolerated.
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		"x := 1\nif x > 0 && x < 10 {\n\tx++\n} else {\n\treturn\n}",
		"for i := 0; i < 3; i++ {\n\tif i == 1 {\n\t\tcontinue\n\t}\n\tbreak\n}",
		"L:\n\tfor {\n\t\tgoto L\n\t}",
		"switch x := 1; x {\ncase 1:\n\tfallthrough\ncase 2:\n\treturn\ndefault:\n\tpanic(\"d\")\n}",
		"select {\ncase v := <-ch:\n\t_ = v\ndefault:\n}",
		"defer f()\ngo g()\nreturn\nx := 1\n_ = x",
		"for k, v := range m {\n\tdelete(m, k)\n\t_ = v\n}",
		"switch t := v.(type) {\ncase int:\n\t_ = t\n}",
		"break\ncontinue\nfallthrough",
		"}\nfunc g() { return }\nfunc h() {",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := BuildCFG(fd.Body)
			checkCFGInvariants(t, g, fd.Body)
		}
	})
}

// FuzzEmitJSONReport asserts the engine-versioned report form keeps
// the emitter's contract for the v2 rule kinds: never panics, always
// a valid object with the engine string and a findings array (never
// null), findings sorted.
func FuzzEmitJSONReport(f *testing.F) {
	f.Add("hot.go", 12, 3, "allocfree", "make on the steady-state hot path allocates every call")
	f.Add("server.go", 40, 2, "locksafe", "mu is locked here but not released on every path")
	f.Add("resilient.go", 170, 7, "collective", "collective Agree may not be reached on all ranks")
	f.Add("tree.go", 65, 2, "taintdet", "value derived from map iteration order flows into numeric particle state")
	f.Add("", -1, 0, "", "\x00 not utf8 \xff")
	f.Fuzz(func(t *testing.T, file string, line, col int, rule, msg string) {
		ds := []Diagnostic{
			{File: file, Line: line, Col: col, Rule: rule, Message: msg},
			{File: "aa.go", Line: 2, Col: 2, Rule: "nilsafe", Message: "fixed"},
		}
		var buf bytes.Buffer
		if err := EmitJSONReport(&buf, ds); err != nil {
			t.Fatalf("EmitJSONReport error: %v", err)
		}
		var rep Report
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatalf("emitted report does not parse: %v\n%s", err, buf.Bytes())
		}
		if rep.Engine != EngineVersion {
			t.Fatalf("engine = %q, want %q", rep.Engine, EngineVersion)
		}
		if rep.Findings == nil {
			t.Fatal("findings decoded as null")
		}
		if len(rep.Findings) != len(ds) {
			t.Fatalf("round-trip length %d, want %d", len(rep.Findings), len(ds))
		}
		if !utf8.ValidString(file) || !utf8.ValidString(rule) || !utf8.ValidString(msg) {
			return
		}
		sorted := make([]Diagnostic, len(ds))
		copy(sorted, ds)
		sortDiagnostics(sorted)
		for i := range sorted {
			if rep.Findings[i] != sorted[i] {
				t.Fatalf("round-trip[%d] = %+v, want %+v", i, rep.Findings[i], sorted[i])
			}
		}
	})
}

// TestEmitJSONEmpty pins the empty-input representation: an array,
// not null.
func TestEmitJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EmitJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("EmitJSON(nil) = %q, want %q", got, "[]")
	}
}
