package analysis

// cfg.go builds per-function control-flow graphs from the plain
// go/ast, the foundation of the v2 flow-sensitive analyzers
// (locksafe, collective, allocfree, taintdet). The builder is purely
// syntactic — it never consults type information — so it can run on
// anything the parser accepts (see FuzzCFGBuild) and never panics.
//
// Shape of the graph:
//
//   - Every statement and every branch-condition expression lands in
//     exactly one basic block, in source evaluation order.
//   - Short-circuit operators are decomposed: `a && b` evaluates a in
//     one block with an edge to a dedicated block for b (taken only
//     when a is true) and an edge to the false target. Analyzers
//     therefore see each conjunct as its own controlling condition.
//   - Branching statements put their condition in a dedicated block
//     whose Kind names the construct ("cond", "switch.head",
//     "range.head", "select.head", "typeswitch.head"); the block's
//     Nodes hold only the condition expressions, so a controlling
//     block's nodes are exactly what decides the branch.
//   - defer and go statements are recorded as ordinary block nodes
//     (*ast.DeferStmt / *ast.GoStmt); their semantics are left to the
//     analyzers' transfer functions.
//   - return edges flow to the shared Exit block; a statement-level
//     call to the predeclared panic flows to the shared Panic block.
//   - Function literals are never descended into: a FuncLit is an
//     opaque value inside whatever node contains it, and its body is
//     a separate CFG built by whoever cares.
//
// Unreachable statements (code after return/panic/break) still get
// blocks so the "every statement appears in exactly one block"
// invariant holds; those blocks simply have no path from Entry.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: an ordered list of AST nodes (statements
// and/or condition expressions) with successor edges.
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry, Exit and
// Panic are always present; Exit collects returns and the fall-off-
// the-end path, Panic collects statement-level panic calls.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Panic  *Block
	Blocks []*Block
}

// ReachableFromEntry returns the set of blocks on some path from
// Entry, as a bitset indexed by Block.Index.
func (g *CFG) ReachableFromEntry() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// reaches returns the set of blocks from which target is reachable
// (including target itself), as a bitset indexed by Block.Index.
func (g *CFG) reaches(target *Block) []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{target}
	seen[target.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !seen[p.Index] {
				seen[p.Index] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// BuildCFG constructs the control-flow graph of one function body.
// A nil body (declaration without a body) yields entry→exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.linkCur(g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// branchTarget is one entry of the break/continue stacks: the label
// (empty for unlabeled constructs) and the jump destination.
type branchTarget struct {
	label string
	block *Block
}

type cfgBuilder struct {
	g         *CFG
	cur       *Block // nil after a terminator; revived as "unreachable"
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*Block
	// pendingLabel is set by a LabeledStmt and consumed by the next
	// loop/switch/select so labeled break/continue resolve to it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// link adds an edge from→to, deduplicating repeats.
func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// linkCur links the current block (if live) to the target.
func (b *cfgBuilder) linkCur(to *Block) { b.link(b.cur, to) }

// live revives the current block after a terminator so trailing
// unreachable statements still land in exactly one block.
func (b *cfgBuilder) live() {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	b.live()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// findTarget resolves a break/continue to its destination: the
// innermost entry for an unlabeled branch, the matching label
// otherwise. Returns nil for invalid placements (the parser accepts
// them; the type checker would not) — the branch then just terminates
// the block.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	// Any non-labeled statement consumes (discards) a pending label:
	// the label then only names a goto target, not a loop.
	switch s.(type) {
	case *ast.LabeledStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt:
	default:
		b.pendingLabel = ""
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.linkCur(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.live()
		condBlk := b.newBlock("cond")
		b.linkCur(condBlk)
		b.cur = condBlk
		then := b.newBlock("if.then")
		after := b.newBlock("if.after")
		els := after
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.linkCur(after)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.linkCur(after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.live()
		head := b.newBlock("cond")
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.linkCur(head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.link(head, body)
			b.cur = nil
		}
		b.breaks = append(b.breaks, branchTarget{label, after})
		b.continues = append(b.continues, branchTarget{label, post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.linkCur(post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.linkCur(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.live()
		head := b.newBlock("range.head")
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.linkCur(head)
		b.link(head, body)
		b.link(head, after)
		b.breaks = append(b.breaks, branchTarget{label, after})
		b.continues = append(b.continues, branchTarget{label, head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.linkCur(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.live()
		head := b.newBlock("switch.head")
		b.linkCur(head)
		if s.Tag != nil {
			head.Nodes = append(head.Nodes, s.Tag)
		}
		after := b.newBlock("switch.after")
		b.buildClauses(s.Body, head, after, label, true)
		b.cur = after

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.live()
		head := b.newBlock("typeswitch.head")
		b.linkCur(head)
		head.Nodes = append(head.Nodes, s.Assign)
		after := b.newBlock("switch.after")
		b.buildClauses(s.Body, head, after, label, false)
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.live()
		head := b.newBlock("select.head")
		b.linkCur(head)
		after := b.newBlock("select.after")
		b.breaks = append(b.breaks, branchTarget{label, after})
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.newBlock("select.comm")
			b.link(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.linkCur(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select with no clauses blocks forever: head keeps no succs.
		b.cur = after

	case *ast.BranchStmt:
		b.live()
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.linkCur(findTarget(b.breaks, labelName(s.Label)))
		case token.CONTINUE:
			b.linkCur(findTarget(b.continues, labelName(s.Label)))
		case token.GOTO:
			if s.Label != nil {
				b.linkCur(b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			// Valid fallthroughs are consumed by buildClauses; one in
			// an invalid position just terminates the block.
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.linkCur(b.g.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.linkCur(b.g.Panic)
			b.cur = nil
		}

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// buildClauses wires the case clauses of a (type) switch: head links
// to every clause block (and to after when there is no default); a
// trailing fallthrough links a clause body to the next clause.
func (b *cfgBuilder) buildClauses(body *ast.BlockStmt, head, after *Block, label string, allowFallthrough bool) {
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are part of the branch decision; they live
		// in the head block so controlling-condition checks see them.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		blocks[i] = b.newBlock("case.body")
		b.link(head, blocks[i])
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && allowFallthrough && j == len(cc.Body)-1 && i+1 < len(blocks) {
				b.add(br)
				b.linkCur(blocks[i+1])
				b.cur = nil
				continue
			}
			b.stmt(st)
		}
		b.linkCur(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// cond lowers a boolean expression to edges: true to t, false to f,
// decomposing short-circuit operators and negation so that every
// atomic condition gets its own block and edge pair.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	b.live()
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock("cond")
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond")
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.add(e)
	b.link(b.cur, t)
	b.link(b.cur, f)
	b.cur = nil
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// isPanicCall reports whether the expression is a call to the
// predeclared panic identifier (syntactic — a shadowed panic would
// also match, which is acceptable for control-flow purposes).
func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// function literals: a FuncLit is an opaque value to the enclosing
// function's flow, with its own CFG.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}

// inspectBlockNode visits one basic-block node without descending
// into nested statement bodies or function literals: for a range
// header only the key/value/operand expressions are visited, every
// other block node is walked whole (the builder guarantees such nodes
// contain no nested statements).
func inspectBlockNode(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
			if e != nil {
				inspectNoFuncLit(e, fn)
			}
		}
		return
	}
	inspectNoFuncLit(n, fn)
}
