package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked analysis unit: a package's library files
// together with its in-package test files, or the external _test
// package of a directory. Units are what analyzers run over.
type Unit struct {
	ImportPath string
	ModulePath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	NilSafe    map[string]bool
}

// Loader discovers, parses and type-checks the module's packages
// using only the standard library: module-internal imports are
// resolved recursively from source by the loader itself, everything
// else (the standard library) through go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	libs    map[string]*types.Package
	loading map[string]bool
	nilSafe map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) { return newLoader(dir) }

func newLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		libs:       make(map[string]*types.Package),
		loading:    make(map[string]bool),
		nilSafe:    make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePath extracts the module path from the first "module" line.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded (library files only) from the module tree, everything else is
// delegated to the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.loadLib(path)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// loadLib type-checks the library (non-test) files of a module
// package, caching the result for importers.
func (l *Loader) loadLib(path string) (*types.Package, error) {
	if pkg, ok := l.libs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir, func(name string, f *ast.File) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.libs[path] = pkg
	return pkg, nil
}

// parseDir parses the .go files of one directory (no recursion),
// keeping files the filter accepts. Nil-safe receiver facts are
// harvested from every parsed file as a side effect.
func (l *Loader) parseDir(dir string, keep func(name string, f *ast.File) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), "_") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if keep(name, f) {
			files = append(files, f)
		}
	}
	return files, nil
}

// check type-checks one set of files as the package at importPath.
func (l *Loader) check(importPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	recordNilSafe(l.nilSafe, importPath, files)
	return pkg, info, nil
}

// LoadForAnalysis builds the analysis units of one directory: the
// package including its in-package test files, plus (when present)
// the external _test package. Library files are therefore analyzed in
// the same unit as the tests that exercise them, mirroring go vet.
func (l *Loader) LoadForAnalysis(dir string) ([]*Unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath := l.importPathFor(abs)

	var libAndOwn, external []*ast.File
	all, err := l.parseDir(abs, func(name string, f *ast.File) bool { return true })
	if err != nil {
		return nil, err
	}
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
			continue
		}
		libAndOwn = append(libAndOwn, f)
	}
	if len(libAndOwn) == 0 && len(external) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	var units []*Unit
	if len(libAndOwn) > 0 {
		pkg, info, err := l.check(importPath, libAndOwn)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			ImportPath: importPath, ModulePath: l.ModulePath, Dir: abs, Fset: l.Fset,
			Files: libAndOwn, Pkg: pkg, Info: info, NilSafe: l.nilSafe,
		})
	}
	if len(external) > 0 {
		pkg, info, err := l.check(importPath+"_test", external)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			ImportPath: importPath + "_test", ModulePath: l.ModulePath, Dir: abs, Fset: l.Fset,
			Files: external, Pkg: pkg, Info: info, NilSafe: l.nilSafe,
		})
	}
	return units, nil
}

// importPathFor synthesizes the import path of a directory inside the
// module tree (testdata directories included, for the golden tests).
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// ExpandPatterns resolves command-line package patterns ("./...",
// "dir/...", plain directories) to a sorted list of package
// directories. Walks skip testdata, hidden and vendor directories.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.ModuleRoot
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			if hasGoFiles(abs) {
				add(abs)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", abs)
			}
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != abs && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// Run loads every directory matched by patterns, applies the full
// analyzer set and returns the sorted findings.
func Run(patterns []string) ([]Diagnostic, error) {
	return RunRules(patterns, Analyzers())
}

// RunRules is Run restricted to an explicit analyzer subset (the
// driver's -rules flag). All matched directories are loaded first so
// the module-level rules see one coherent unit set (call graph and
// cross-package summaries span exactly what the patterns name).
func RunRules(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := newLoader(".")
	if err != nil {
		return nil, err
	}
	dirs, err := l.ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, dir := range dirs {
		us, err := l.LoadForAnalysis(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return RunUnits(units, analyzers), nil
}

// ModuleRoot locates the root directory of the module containing dir
// (the directory holding go.mod). The CLI uses it to relativize
// baseline paths so snapshots are stable across checkouts.
func ModuleRoot(dir string) (string, error) {
	l, err := newLoader(dir)
	if err != nil {
		return "", err
	}
	return l.ModuleRoot, nil
}
