package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// collective machine-checks the PR 8 deadlock class: an MPI
// collective (Agree/Allgather*/Allreduce*/ShrinkTo — every rank of
// the communicator must call it, or the ranks that do block forever)
// reached on only some ranks' control-flow paths. The death-epoch bug
// fixed in PR 8 was exactly this: a collective guarded by a condition
// that evaluated differently per rank.
//
// The check is a control-dependence analysis over the CFG combined
// with a rank-uniformity approximation (DESIGN.md §13): a collective
// call site is flagged when a branch decides whether the site is
// reached AND the branch condition is rank-variant. The approximation
// is optimistic and local: only designated rank-variant sources taint
// a condition —
//
//   - Comm.Rank / Comm.WorldRank (per-rank identity),
//   - Comm.Recv* / Comm.TryRecv / Comm.Now (per-rank message timing
//     and per-rank clocks),
//   - time.Now and global math/rand draws,
//   - channel receives, select statements (arrival order), and
//     recover() (a panic observed on this rank only),
//
// propagated through local assignments. Parameters, struct fields,
// results of other calls (including the collectives themselves: an
// agreed value is uniform by construction) and captured variables are
// assumed uniform — interprocedural divergence is out of scope and is
// the reason intentional sites carry a reasoned //lint:ignore.
//
// Package mpi (which implements the collectives and may legitimately
// branch per rank inside them) and _test.go files (which orchestrate
// ranks explicitly) are exempt.
var AnalyzerCollective = &Analyzer{
	Name: "collective",
	Doc:  "mpi collectives must be reached unconditionally or guarded only by rank-uniform conditions",
	Run:  runCollective,
}

// collectiveMethods are the Comm methods every member rank must call
// together.
var collectiveMethods = map[string]bool{
	"Agree": true, "AgreeDeadRanks": true, "ShrinkTo": true,
	"Allgather": true, "AllgatherBatched": true, "AllgatherBatchedOverlap": true,
	"AllreduceFloat64": true, "AllreduceInt64": true,
}

// rankVariantMethods are the Comm methods whose results differ per
// rank by construction.
var rankVariantMethods = map[string]bool{
	"Rank": true, "WorldRank": true, "Now": true,
	"Recv": true, "RecvDeadline": true, "TryRecv": true,
	"RecvFloat64s": true, "RecvFloat64sDeadline": true, "RecvInt64s": true,
	"RecvService": true,
}

// commMethodOf resolves a call to a method on the module's Comm named
// type (or a fixture type of the same name) and returns the method
// name.
func commMethodOf(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Comm" {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !pathInModule(pkg.Path(), p.ModulePath) {
		return "", false
	}
	return sel.Sel.Name, true
}

// pathInModule reports whether an import path belongs to the module
// under analysis.
func pathInModule(path, module string) bool {
	return path == module || strings.HasPrefix(path, module+"/")
}

func runCollective(p *Pass) {
	if p.Pkg.Name() == "mpi" {
		return
	}
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				collectiveCheckBody(p, body)
			}
			return true
		})
	}
}

func collectiveCheckBody(p *Pass, body *ast.BlockStmt) {
	found := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := commMethodOf(p, call); ok && collectiveMethods[name] {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}

	g := BuildCFG(body)
	taint := solveRankTaint(p, g)

	// Locate every collective call site and the block holding it.
	type site struct {
		block *Block
		call  *ast.CallExpr
		name  string
	}
	var sites []site
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectBlockNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if name, ok := commMethodOf(p, call); ok && collectiveMethods[name] {
						sites = append(sites, site{block: b, call: call, name: name})
					}
				}
				return true
			})
		}
	}

	reach := g.ReachableFromEntry()
	for _, s := range sites {
		if !reach[s.block.Index] {
			continue // dead code cannot desynchronize ranks
		}
		reachesSite := g.reaches(s.block)
		for _, c := range g.Blocks {
			if !reach[c.Index] || len(c.Succs) < 2 {
				continue
			}
			hit, miss := false, false
			for _, succ := range c.Succs {
				if reachesSite[succ.Index] {
					hit = true
				} else {
					miss = true
				}
			}
			if !hit || !miss {
				continue
			}
			if why, variant := branchRankVariant(p, c, taint[c.Index]); variant {
				p.Reportf(s.call.Pos(), "collective",
					"collective %s may not be reached on all ranks: guarded by rank-variant condition (%s) at line %d",
					s.name, why, p.Fset.Position(blockCondPos(c, s.call.Pos())).Line)
				break // one controlling condition per site is enough
			}
		}
	}
}

// blockCondPos picks a stable position for a controlling block's
// condition (its first node, falling back to the site position for
// node-less heads like select).
func blockCondPos(b *Block, fallback token.Pos) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return fallback
}

// branchRankVariant decides whether a controlling block branches on
// rank-variant data, given the taint fact at its entry.
func branchRankVariant(p *Pass, c *Block, fact objSet) (string, bool) {
	switch c.Kind {
	case "select.head":
		// Which select clause wins depends on per-rank message and
		// timer arrival order.
		return "select over channel operations", true
	case "range.head":
		if len(c.Nodes) == 1 {
			if r, ok := c.Nodes[0].(*ast.RangeStmt); ok {
				if tv, ok := p.Info.Types[r.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						return "range over channel", true
					}
				}
				if why, v := exprRankVariant(p, r.X, fact); v {
					return why, true
				}
			}
		}
		return "", false
	default:
		for _, n := range c.Nodes {
			e, ok := n.(ast.Expr)
			if !ok {
				if as, isAssign := n.(ast.Stmt); isAssign {
					// typeswitch.head holds its assign statement.
					var found string
					variant := false
					inspectBlockNode(as, func(m ast.Node) bool {
						if variant {
							return false
						}
						if ex, ok := m.(ast.Expr); ok {
							if why, v := exprRankVariantShallow(p, ex, fact); v {
								found, variant = why, true
								return false
							}
						}
						return true
					})
					if variant {
						return found, true
					}
				}
				continue
			}
			if why, v := exprRankVariant(p, e, fact); v {
				return why, true
			}
		}
		return "", false
	}
}

// exprRankVariant reports whether any sub-expression of e is a
// rank-variant source or a variable tainted by one. A collective call
// is an uniformity boundary: its result is agreed across ranks by
// construction, so the walk does not descend into it — guarding a
// collective with another collective (the cancel/resume idiom of
// internal/core) is exactly how rank-variant data is laundered into a
// rank-uniform decision.
func exprRankVariant(p *Pass, e ast.Expr, fact objSet) (string, bool) {
	var why string
	variant := false
	inspectNoFuncLit(e, func(n ast.Node) bool {
		if variant {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := commMethodOf(p, call); ok && collectiveMethods[name] {
				return false // agreed value: uniform regardless of inputs
			}
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if w, v := exprRankVariantShallow(p, ex, fact); v {
			why, variant = w, true
			return false
		}
		return true
	})
	return why, variant
}

// exprRankVariantShallow classifies one expression node (no descent).
func exprRankVariantShallow(p *Pass, e ast.Expr, fact objSet) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil {
			if _, tainted := fact[obj]; tainted {
				return x.Name + " derived from " + fact.label(obj), true
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.CallExpr:
		if w, v := callRankVariant(p, x); v {
			return w, true
		}
	}
	return "", false
}

// callRankVariant classifies a call expression as a rank-variant
// source.
func callRankVariant(p *Pass, call *ast.CallExpr) (string, bool) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return "recover()", true
		}
	}
	if name, ok := commMethodOf(p, call); ok && rankVariantMethods[name] {
		return "Comm." + name, true
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			return "time.Now", true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return "global math/rand." + fn.Name(), true
		}
	}
	return "", false
}

// objSet is the taint fact: the set of local objects holding
// rank-variant values, each with the label of its source (kept for
// messages; the lexicographically smallest label wins a join so the
// result is deterministic).
type objSet map[types.Object]string

func (s objSet) label(o types.Object) string {
	if l := s[o]; l != "" && l != "1" {
		return l
	}
	return "a rank-variant source"
}

func objSetEqual(a, b objSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func objSetJoin(a, b objSet) objSet {
	out := make(objSet, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if w, ok := out[k]; !ok || v < w {
			out[k] = v
		}
	}
	return out
}

// solveRankTaint runs the forward rank-variance taint analysis over
// the CFG: assignments from variant expressions taint their targets,
// assignments from uniform expressions clear them (strong update).
func solveRankTaint(p *Pass, g *CFG) []objSet {
	return Solve(g, Problem[objSet]{
		Bottom:   func() objSet { return objSet{} },
		Boundary: func() objSet { return objSet{} },
		Transfer: func(b *Block, in objSet) objSet {
			out := make(objSet, len(in))
			for k, v := range in {
				out[k] = v
			}
			for _, n := range b.Nodes {
				rankTaintNode(p, n, out)
			}
			return out
		},
		Join:  objSetJoin,
		Equal: objSetEqual,
	})
}

// rankTaintNode applies one block node's gen/kill effect to the fact
// (mutates out, which the Transfer wrapper owns).
func rankTaintNode(p *Pass, n ast.Node, out objSet) {
	assign := func(lhs ast.Expr, why string, variant bool) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if variant {
			out[obj] = why
		} else {
			delete(out, obj)
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			why, variant := exprRankVariant(p, s.Rhs[0], out)
			for _, lhs := range s.Lhs {
				assign(lhs, why, variant)
			}
			return
		}
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) {
				why, variant := exprRankVariant(p, s.Rhs[i], out)
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					// Compound assignment mixes old and new: taint
					// only gains, never clears.
					if variant {
						assign(lhs, why, true)
					}
					continue
				}
				assign(lhs, why, variant)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				variant := false
				why := ""
				if i < len(vs.Values) {
					why, variant = exprRankVariant(p, vs.Values[i], out)
				} else if len(vs.Values) == 1 {
					why, variant = exprRankVariant(p, vs.Values[0], out)
				}
				assign(name, why, variant)
			}
		}
	case *ast.RangeStmt:
		// Ranging over a variant collection taints the loop
		// variables; over a channel, both are timing-variant.
		why, variant := exprRankVariant(p, s.X, out)
		if tv, ok := p.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				why, variant = "range over channel", true
			}
		}
		for _, lhs := range []ast.Expr{s.Key, s.Value} {
			if lhs != nil {
				assign(lhs, why, variant)
			}
		}
	}
}
