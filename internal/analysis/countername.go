package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// AnalyzerCounterName enforces the telemetry naming convention
// (DESIGN.md §9): every metric name passed to Registry.Counter,
// Registry.Gauge or Registry.Timer is a lowercase dotted
// "domain.metric" path ("hot.mac_accepts", "fault.injected",
// "core.evals.level0"). The merged façade snapshot is keyed by these
// strings — a stray spelling silently forks a metric into two series
// that no emitter ever reunites. Only compile-time constant names are
// checkable; dynamically built names (fmt.Sprintf) are out of scope,
// as are _test.go files, which use throwaway names.
var AnalyzerCounterName = &Analyzer{
	Name: "countername",
	Doc:  "telemetry metric names must match the lowercase domain.metric convention",
	Run:  runCounterName,
}

// metricNameRE is the convention: at least two lowercase dot-joined
// segments of [a-z0-9_], starting with a letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

func runCounterName(pass *Pass) {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Timer":
			default:
				return true
			}
			if pass.Info.Selections[sel] == nil || !isRegistryPointer(pass.Info.Types[sel.X].Type) {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			name := constant.StringVal(tv.Value)
			if metricNameRE.MatchString(name) {
				return true
			}
			pass.Reportf(call.Args[0].Pos(), "countername",
				"telemetry metric name %q does not match the lowercase domain.metric convention (e.g. \"hot.mac_accepts\")", name)
			return true
		})
	}
}

// isRegistryPointer matches *Registry receivers (the telemetry
// registry; matched by type name so hermetic testdata works).
func isRegistryPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
