package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestVelocityZeroSeparation(t *testing.T) {
	pw := Pairwise{Sm: Algebraic6(), Sigma: 0.1}
	if got := pw.Velocity(vec.Zero3, vec.V3(1, 2, 3)); got != vec.Zero3 {
		t.Fatalf("self-induced velocity = %v, want 0", got)
	}
	u, g := pw.VelocityGrad(vec.Zero3, vec.V3(1, 2, 3))
	if u != vec.Zero3 || g != (vec.Mat3{}) {
		t.Fatalf("self-induced grad = %v %v, want zero", u, g)
	}
}

func TestVelocityFarFieldMatchesSingular(t *testing.T) {
	// Far from the core the regularized kernel reduces to the singular
	// Biot–Savart kernel.
	alpha := vec.V3(0.3, -0.2, 0.9)
	r := vec.V3(5, -3, 2) // |r| ≈ 6.16, σ = 0.05 ⇒ ρ ≈ 123
	reg := Pairwise{Sm: Algebraic6(), Sigma: 0.05}
	sing := Pairwise{Sm: Singular(), Sigma: 1}
	u1, u2 := reg.Velocity(r, alpha), sing.Velocity(r, alpha)
	if u1.Sub(u2).Norm() > 1e-10*u2.Norm() {
		t.Fatalf("far field: regularized %v vs singular %v", u1, u2)
	}
}

func TestVelocityAgainstHandComputed(t *testing.T) {
	// Singular kernel, r = (1,0,0), α = (0,0,1):
	// u = −(1/4π) (r × α)/|r|³ = −(1/4π)(0·? ...) r×α = (0,-1,0)·? …
	// r×α = (1,0,0)×(0,0,1) = (0·1−0·0, 0·0−1·1, 0) = (0,−1,0)
	// ⇒ u = (0, 1/4π, 0).
	pw := Pairwise{Sm: Singular(), Sigma: 1}
	u := pw.Velocity(vec.V3(1, 0, 0), vec.V3(0, 0, 1))
	want := vec.V3(0, 1/(4*math.Pi), 0)
	if u.Sub(want).Norm() > 1e-14 {
		t.Fatalf("u = %v, want %v", u, want)
	}
}

func TestVelocityGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sm := range allKernels() {
		pw := Pairwise{Sm: sm, Sigma: 0.7}
		for iter := 0; iter < 20; iter++ {
			r := vec.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			if r.Norm() < 0.05 {
				continue
			}
			alpha := vec.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			_, grad := pw.VelocityGrad(r, alpha)
			h := 1e-6
			for j := 0; j < 3; j++ {
				rp := r.WithComponent(j, r.Component(j)+h)
				rm := r.WithComponent(j, r.Component(j)-h)
				up := pw.Velocity(rp, alpha)
				um := pw.Velocity(rm, alpha)
				fd := up.Sub(um).Scale(1 / (2 * h))
				for i := 0; i < 3; i++ {
					got := grad[i][j]
					want := fd.Component(i)
					if math.Abs(got-want) > 2e-5*(1+math.Abs(want)) {
						t.Fatalf("%s: grad[%d][%d] = %v, fd = %v (r=%v)",
							sm.Name(), i, j, got, want, r)
					}
				}
			}
		}
	}
}

func TestGradSmallRhoBranchContinuity(t *testing.T) {
	// The H(ρ) series branch and the direct branch must agree near the
	// switch radius.
	for _, sm := range allKernels() {
		pw := Pairwise{Sm: sm, Sigma: 1}
		rho := hSwitch * 0.999 // h() takes the series branch here
		series := pw.h(rho)
		r5 := rho * rho * rho * rho * rho
		direct := (rho*sm.QPrime(rho) - 3*sm.Q(rho)) / r5
		if math.Abs(series-direct) > 1e-6*(1+math.Abs(direct)) {
			t.Errorf("%s: H branches disagree at switch: series %v vs direct %v",
				sm.Name(), series, direct)
		}
	}
}

func TestGradNoCatastrophicCancellation(t *testing.T) {
	// For very small separations the gradient must stay finite and the
	// velocity must vanish smoothly (≈ solid-body rotation inside the
	// core).
	pw := Pairwise{Sm: Algebraic6(), Sigma: 1}
	alpha := vec.V3(0, 0, 1)
	for _, d := range []float64{1e-8, 1e-6, 1e-4, 1e-3, 1e-2} {
		u, g := pw.VelocityGrad(vec.V3(d, 0, 0), alpha)
		if !u.IsFinite() {
			t.Fatalf("velocity not finite at d=%v: %v", d, u)
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if math.IsNaN(g[i][j]) || math.IsInf(g[i][j], 0) {
					t.Fatalf("grad not finite at d=%v: %v", d, g)
				}
			}
		}
	}
}

func TestVelocityAntisymmetricInSeparation(t *testing.T) {
	// u(r) = −u(−r) for a fixed α (the kernel is odd in r).
	pw := Pairwise{Sm: Algebraic6(), Sigma: 0.3}
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 40; iter++ {
		r := vec.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		a := vec.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		u1 := pw.Velocity(r, a)
		u2 := pw.Velocity(r.Neg(), a)
		if u1.Add(u2).Norm() > 1e-12*(u1.Norm()+1) {
			t.Fatalf("not antisymmetric: %v vs %v", u1, u2)
		}
	}
}

func TestVelocityParallelAlphaIsZero(t *testing.T) {
	// r × α = 0 when r ∥ α.
	pw := Pairwise{Sm: Algebraic4(), Sigma: 0.3}
	u := pw.Velocity(vec.V3(2, 2, 2), vec.V3(-1, -1, -1))
	if u.Norm() > 1e-14 {
		t.Fatalf("parallel-α velocity = %v, want 0", u)
	}
}

func TestStretchSchemes(t *testing.T) {
	g := vec.Mat3{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	a := vec.V3(1, 0, 0)
	if got := StretchClassical(g, a); got != vec.V3(1, 4, 7) {
		t.Fatalf("classical = %v", got)
	}
	if got := StretchTranspose(g, a); got != vec.V3(1, 2, 3) {
		t.Fatalf("transpose = %v", got)
	}
	if Transpose.Stretch(g, a) != StretchTranspose(g, a) {
		t.Fatal("Scheme.Stretch(Transpose) mismatch")
	}
	if Classical.Stretch(g, a) != StretchClassical(g, a) {
		t.Fatal("Scheme.Stretch(Classical) mismatch")
	}
	if Transpose.String() != "transpose" || Classical.String() != "classical" {
		t.Fatal("Scheme.String mismatch")
	}
}

func TestCoulombFieldIsMinusGradPotentialSign(t *testing.T) {
	// field = −∇φ for a positive charge: φ decays outward, E points
	// outward (away from the source).
	phi, e := Coulomb(vec.V3(1, 0, 0), 1, 0)
	if phi != 1 {
		t.Fatalf("phi = %v, want 1", phi)
	}
	if e.X <= 0 || e.Y != 0 || e.Z != 0 {
		t.Fatalf("field = %v, want +x direction", e)
	}
	h := 1e-6
	phiP, _ := Coulomb(vec.V3(1+h, 0, 0), 1, 0)
	phiM, _ := Coulomb(vec.V3(1-h, 0, 0), 1, 0)
	grad := (phiP - phiM) / (2 * h)
	if math.Abs(e.X+grad) > 1e-6 {
		t.Fatalf("E_x = %v, −dφ/dx = %v", e.X, -grad)
	}
}

func TestCoulombSoftening(t *testing.T) {
	// With Plummer softening the potential is finite at the origin.
	phi, e := Coulomb(vec.Zero3, 2, 0.1)
	if math.Abs(phi-20) > 1e-12 {
		t.Fatalf("softened phi(0) = %v, want 20", phi)
	}
	if e != vec.Zero3 {
		t.Fatalf("softened field(0) = %v, want 0", e)
	}
	if phi, _ := Coulomb(vec.Zero3, 1, 0); phi != 0 {
		t.Fatal("unsoftened origin must return 0 by convention")
	}
}

func BenchmarkVelocityAlgebraic6(b *testing.B) {
	pw := Pairwise{Sm: Algebraic6(), Sigma: 0.1}
	r := vec.V3(0.3, -0.2, 0.5)
	a := vec.V3(0.1, 0.7, -0.3)
	var acc vec.Vec3
	for i := 0; i < b.N; i++ {
		acc = acc.Add(pw.Velocity(r, a))
	}
	_ = acc
}

func BenchmarkVelocityGradAlgebraic6(b *testing.B) {
	pw := Pairwise{Sm: Algebraic6(), Sigma: 0.1}
	r := vec.V3(0.3, -0.2, 0.5)
	a := vec.V3(0.1, 0.7, -0.3)
	var acc vec.Vec3
	for i := 0; i < b.N; i++ {
		u, _ := pw.VelocityGrad(r, a)
		acc = acc.Add(u)
	}
	_ = acc
}
