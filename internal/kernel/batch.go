package kernel

import "math"

// This file is the struct-of-arrays companion of pairwise.go: the same
// regularized Biot–Savart and Coulomb interactions, evaluated over
// separate coordinate/weight slices in fixed-width blocks with fully
// scalarized accumulation. The AoS path (Pairwise.VelocityGrad and
// friends) is the reference implementation; every expression here
// mirrors its reference term for term — same operations, same
// association, same branch structure — so a batched sum over a lane
// range is bitwise equal to the AoS loop over the same sources in the
// same order. Constants hoisted out of the loop (σ³, σ⁵, the ζ series)
// are pure recomputations of loop-invariant subexpressions, which is
// bitwise-neutral; anything that would reassociate or strength-reduce
// the per-pair arithmetic (fused accumulation across lanes, reciprocal
// multiplication for the divisions) is deliberately not done.
//
// Zero-separation pairs deserve a note: the AoS kernels return exact
// zeros which the caller then adds into its accumulator. Adding +0 is
// the identity on every value an accumulator can reach here (the
// accumulators start at +0 and IEEE round-to-nearest addition can only
// produce −0 from two −0 terms, never from a +0 start), so the batch
// path skips those additions outright and still matches bitwise.

// BatchWidth is the fixed block width of the SoA inner loops: the
// distance prepass runs over BatchWidth-sized chunks whose temporaries
// fit in registers. The final chunk of a range is the remainder loop
// (length 1..BatchWidth−1), which runs the identical per-lane kernel.
const BatchWidth = 8

// VortexAcc accumulates one target's velocity, velocity gradient and
// interaction count over batched evaluation. G is the row-major
// velocity gradient ∂u_i/∂x_j (G[3*i+j]), matching vec.Mat3 layout.
type VortexAcc struct {
	UX, UY, UZ float64
	G          [9]float64
	N          int64
}

// VortexBatch carries the loop-invariant data of batched vortex
// evaluation: the kernel, σ and its powers, and the ζ Taylor
// coefficients. Construct once per target (or per traversal) with
// NewVortexBatch; the struct is read-only afterwards and safe to share
// across goroutines.
type VortexBatch struct {
	sm     Smoothing
	sigma  float64
	s3, s5 float64
	z      [4]float64
	series bool
}

// NewVortexBatch precomputes the per-traversal constants of pw. The
// power expressions repeat Pairwise.fOf/VelocityGrad exactly so the
// hoisted values are bitwise identical to the per-pair recomputation.
func NewVortexBatch(pw Pairwise) VortexBatch {
	z := pw.Sm.ZetaSeries()
	return VortexBatch{
		sm:    pw.Sm,
		sigma: pw.Sigma,
		s3:    pw.Sigma * pw.Sigma * pw.Sigma,
		s5:    pw.Sigma * pw.Sigma * pw.Sigma * pw.Sigma * pw.Sigma,
		z:     z,
		//lint:ignore floateq exact zero is the "kernel has no series" flag set by construction, never computed
		series: z[0] != 0,
	}
}

// AccumGradRange adds the velocity and velocity-gradient contributions
// of every source lane to acc, skipping lane `skip` (pass a negative
// value to skip none). The lane slices must have equal length:
// positions xs/ys/zs, circulation vectors axs/ays/azs. The target sits
// at (tx, ty, tz). Source lanes are summed in index order, so the
// result is bitwise equal to the AoS loop
//
//	for each i: res += pw.VelocityGrad(x − p_i, α_i)
//
// over the same sources.
func (b *VortexBatch) AccumGradRange(acc *VortexAcc, tx, ty, tz float64, xs, ys, zs, axs, ays, azs []float64, skip int) {
	n := len(xs)
	var dx, dy, dz, dd [BatchWidth]float64
	for base := 0; base < n; base += BatchWidth {
		blk := n - base
		if blk > BatchWidth {
			blk = BatchWidth
		}
		xb, yb, zb := xs[base:base+blk], ys[base:base+blk], zs[base:base+blk]
		for k := 0; k < blk; k++ {
			rx := tx - xb[k]
			ry := ty - yb[k]
			rz := tz - zb[k]
			dx[k], dy[k], dz[k] = rx, ry, rz
			dd[k] = rx*rx + ry*ry + rz*rz
		}
		ab, bb, cb := axs[base:base+blk], ays[base:base+blk], azs[base:base+blk]
		for k := 0; k < blk; k++ {
			if base+k == skip {
				continue
			}
			d2 := dd[k]
			//lint:ignore floateq exact zero separation is the documented self-interaction cutoff
			if d2 == 0 {
				acc.N++ // the AoS loop counts the pair and adds exact zeros
				continue
			}
			rx, ry, rz := dx[k], dy[k], dz[k]
			ax, ay, az := ab[k], bb[k], cb[k]

			// Per-pair kernel: Pairwise.VelocityGrad, scalarized.
			d := math.Sqrt(d2)
			rho := d / b.sigma
			var q float64
			if rho >= hSwitch {
				q = b.sm.Q(rho)
			}
			var f float64
			if rho < hSwitch && b.series {
				r2 := rho * rho
				f = 4 * math.Pi * (b.z[0]/3 + r2*(b.z[1]/5+r2*(b.z[2]/7+r2*(b.z[3]/9)))) / b.s3
			} else if rho < hSwitch {
				f = b.sm.Q(rho) / (d2 * d) // singular (series-free) kernel keeps the direct quotient
			} else {
				f = q / (d2 * d)
			}
			const inv4pi = 1 / (4 * math.Pi)
			// r × α and the shared scale factors of Pairwise.VelocityGrad.
			cx := ry*az - rz*ay
			cy := rz*ax - rx*az
			cz := rx*ay - ry*ax
			fs := -f * inv4pi
			var hq float64
			if rho < hSwitch {
				r2 := rho * rho
				hq = 4 * math.Pi * (2.0/5*b.z[1] + r2*(4.0/7*b.z[2]+r2*(6.0/9*b.z[3])))
			} else {
				r5 := rho * rho * rho * rho * rho
				hq = (rho*b.sm.QPrime(rho) - 3*q) / r5
			}
			gs := -(hq / b.s5) * inv4pi

			acc.UX += fs * cx
			acc.UY += fs * cy
			acc.UZ += fs * cz
			// grad = Outer(r×α, r)·gs + ε_{ijl}α_l·fs, written out per
			// entry. The fs*0 diagonal terms reproduce the reference's
			// m.Scale on the zero entries of the ε matrix (their signed
			// zeros participate in the entry sums).
			acc.G[0] += gs*(cx*rx) + fs*0
			acc.G[1] += gs*(cx*ry) + fs*az
			acc.G[2] += gs*(cx*rz) + fs*(-ay)
			acc.G[3] += gs*(cy*rx) + fs*(-az)
			acc.G[4] += gs*(cy*ry) + fs*0
			acc.G[5] += gs*(cy*rz) + fs*ax
			acc.G[6] += gs*(cz*rx) + fs*ay
			acc.G[7] += gs*(cz*ry) + fs*(-ax)
			acc.G[8] += gs*(cz*rz) + fs*0
			acc.N++
		}
	}
}

// AccumGrad adds one source's velocity and gradient contribution to
// acc for a precomputed separation r = target − source with weight
// vector α — the far-field (particle–cell) leg, where r is measured to
// a cell centroid and α is the cell's circulation sum. It does not
// touch acc.N: far items carry their own interaction accounting.
func (b *VortexBatch) AccumGrad(acc *VortexAcc, rx, ry, rz, ax, ay, az float64) {
	d2 := rx*rx + ry*ry + rz*rz
	//lint:ignore floateq exact zero separation is the documented self-interaction cutoff
	if d2 == 0 {
		return
	}
	d := math.Sqrt(d2)
	rho := d / b.sigma
	var q float64
	if rho >= hSwitch {
		q = b.sm.Q(rho)
	}
	var f float64
	if rho < hSwitch && b.series {
		r2 := rho * rho
		f = 4 * math.Pi * (b.z[0]/3 + r2*(b.z[1]/5+r2*(b.z[2]/7+r2*(b.z[3]/9)))) / b.s3
	} else if rho < hSwitch {
		f = b.sm.Q(rho) / (d2 * d)
	} else {
		f = q / (d2 * d)
	}
	const inv4pi = 1 / (4 * math.Pi)
	cx := ry*az - rz*ay
	cy := rz*ax - rx*az
	cz := rx*ay - ry*ax
	fs := -f * inv4pi
	var hq float64
	if rho < hSwitch {
		r2 := rho * rho
		hq = 4 * math.Pi * (2.0/5*b.z[1] + r2*(4.0/7*b.z[2]+r2*(6.0/9*b.z[3])))
	} else {
		r5 := rho * rho * rho * rho * rho
		hq = (rho*b.sm.QPrime(rho) - 3*q) / r5
	}
	gs := -(hq / b.s5) * inv4pi

	acc.UX += fs * cx
	acc.UY += fs * cy
	acc.UZ += fs * cz
	acc.G[0] += gs*(cx*rx) + fs*0
	acc.G[1] += gs*(cx*ry) + fs*az
	acc.G[2] += gs*(cx*rz) + fs*(-ay)
	acc.G[3] += gs*(cy*rx) + fs*(-az)
	acc.G[4] += gs*(cy*ry) + fs*0
	acc.G[5] += gs*(cy*rz) + fs*ax
	acc.G[6] += gs*(cz*rx) + fs*ay
	acc.G[7] += gs*(cz*ry) + fs*(-ax)
	acc.G[8] += gs*(cz*rz) + fs*0
}

// AccumVelRange is AccumGradRange restricted to velocities — the
// scalar mirror of Pairwise.Velocity summed over the lane range. Only
// acc's velocity components and N are touched.
func (b *VortexBatch) AccumVelRange(acc *VortexAcc, tx, ty, tz float64, xs, ys, zs, axs, ays, azs []float64, skip int) {
	n := len(xs)
	var dx, dy, dz, dd [BatchWidth]float64
	for base := 0; base < n; base += BatchWidth {
		blk := n - base
		if blk > BatchWidth {
			blk = BatchWidth
		}
		xb, yb, zb := xs[base:base+blk], ys[base:base+blk], zs[base:base+blk]
		for k := 0; k < blk; k++ {
			rx := tx - xb[k]
			ry := ty - yb[k]
			rz := tz - zb[k]
			dx[k], dy[k], dz[k] = rx, ry, rz
			dd[k] = rx*rx + ry*ry + rz*rz
		}
		ab, bb, cb := axs[base:base+blk], ays[base:base+blk], azs[base:base+blk]
		for k := 0; k < blk; k++ {
			if base+k == skip {
				continue
			}
			d2 := dd[k]
			//lint:ignore floateq exact zero separation is the documented self-interaction cutoff
			if d2 == 0 {
				acc.N++
				continue
			}
			rx, ry, rz := dx[k], dy[k], dz[k]
			d := math.Sqrt(d2)
			rho := d / b.sigma
			var f float64
			if rho < hSwitch && b.series {
				r2 := rho * rho
				f = 4 * math.Pi * (b.z[0]/3 + r2*(b.z[1]/5+r2*(b.z[2]/7+r2*(b.z[3]/9)))) / b.s3
			} else {
				f = b.sm.Q(rho) / (d2 * d)
			}
			cx := ry*cb[k] - rz*bb[k]
			cy := rz*ab[k] - rx*cb[k]
			cz := rx*bb[k] - ry*ab[k]
			vs := -f / (4 * math.Pi)
			acc.UX += vs * cx
			acc.UY += vs * cy
			acc.UZ += vs * cz
			acc.N++
		}
	}
}

// CoulombAcc accumulates one target's potential, field and interaction
// count over batched evaluation.
type CoulombAcc struct {
	Phi        float64
	EX, EY, EZ float64
	N          int64
}

// AccumCoulombRange adds the Plummer-softened Coulomb contributions of
// every source lane to acc, skipping lane `skip` (negative: none) —
// the scalar mirror of kernel.Coulomb summed in index order.
func AccumCoulombRange(acc *CoulombAcc, tx, ty, tz, eps float64, xs, ys, zs, qs []float64, skip int) {
	n := len(xs)
	eps2 := eps * eps
	var dx, dy, dz, dd [BatchWidth]float64
	for base := 0; base < n; base += BatchWidth {
		blk := n - base
		if blk > BatchWidth {
			blk = BatchWidth
		}
		xb, yb, zb := xs[base:base+blk], ys[base:base+blk], zs[base:base+blk]
		for k := 0; k < blk; k++ {
			rx := tx - xb[k]
			ry := ty - yb[k]
			rz := tz - zb[k]
			dx[k], dy[k], dz[k] = rx, ry, rz
			dd[k] = rx*rx + ry*ry + rz*rz + eps2
		}
		qb := qs[base : base+blk]
		for k := 0; k < blk; k++ {
			if base+k == skip {
				continue
			}
			d2 := dd[k]
			//lint:ignore floateq exact zero: only the unsoftened coincident-point case divides by zero
			if d2 == 0 {
				acc.N++
				continue
			}
			inv := 1 / math.Sqrt(d2)
			qc := qb[k]
			acc.Phi += qc * inv
			es := qc * inv * inv * inv
			acc.EX += es * dx[k]
			acc.EY += es * dy[k]
			acc.EZ += es * dz[k]
			acc.N++
		}
	}
}
