package kernel

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// NaN-hygiene property sweep: regularized kernels must return finite
// velocity and gradient for every separation down to and including
// denormals and exact zero. The historic failure mode is the direct
// quotient q(ρ)/|r|³ at |r| ≲ 1e-108, where numerator and denominator
// both underflow to 0 and produce 0/0 = NaN; fOf's ζ-series branch
// removes it. The truly singular kernel (q ≡ 1) is excluded: it
// diverges at the origin by definition.
func TestNaNHygieneNearZeroSeparations(t *testing.T) {
	seps := []float64{
		0,
		5e-324, // smallest denormal
		1e-320,
		1e-300,
		1e-200,
		1e-108, // the historic 0/0 regime of the direct quotient
		1e-100,
		1e-50,
		1e-18,
		1e-9,
		1e-3,
	}
	sigmas := []float64{0.02, 1, 37.5}
	dirs := []vec.Vec3{
		vec.V3(1, 0, 0),
		vec.V3(0, -1, 0),
		vec.V3(0.6, -0.48, 0.64),
	}
	alpha := vec.V3(0.3, -1.1, 0.7)
	for _, sm := range allKernels() {
		for _, sigma := range sigmas {
			pw := Pairwise{Sm: sm, Sigma: sigma}
			// Straddle the series/direct switch too: both branches must
			// be finite, not just agree.
			all := append(append([]float64(nil), seps...),
				hSwitch*sigma*(1-1e-9), hSwitch*sigma*(1+1e-9))
			for _, d := range all {
				for _, dir := range dirs {
					r := dir.Scale(d)
					u := pw.Velocity(r, alpha)
					if !u.IsFinite() {
						t.Fatalf("%s σ=%v d=%v: velocity %v", sm.Name(), sigma, d, u)
					}
					uu, g := pw.VelocityGrad(r, alpha)
					if !uu.IsFinite() {
						t.Fatalf("%s σ=%v d=%v: grad-path velocity %v", sm.Name(), sigma, d, uu)
					}
					for i := 0; i < 3; i++ {
						for j := 0; j < 3; j++ {
							if math.IsNaN(g[i][j]) || math.IsInf(g[i][j], 0) {
								t.Fatalf("%s σ=%v d=%v: gradient %v", sm.Name(), sigma, d, g)
							}
						}
					}
					if d == 0 && (u != vec.Zero3 || uu != vec.Zero3) {
						t.Fatalf("%s σ=%v: nonzero velocity at zero separation", sm.Name(), sigma)
					}
				}
			}
		}
	}
}

// The two fOf branches must agree at the switch radius, mirroring the
// H(ρ) continuity test: a jump there would make tree-vs-direct
// comparisons discipline-dependent on particle spacing.
func TestFOfBranchContinuity(t *testing.T) {
	for _, sm := range allKernels() {
		pw := Pairwise{Sm: sm, Sigma: 1}
		rho := hSwitch * 0.999
		d := rho * pw.Sigma
		series := pw.fOf(rho, d*d, d)
		direct := sm.Q(rho) / (d * d * d)
		if math.Abs(series-direct) > 1e-6*(1+math.Abs(direct)) {
			t.Errorf("%s: fOf branches disagree at switch: series %v vs direct %v",
				sm.Name(), series, direct)
		}
	}
}
