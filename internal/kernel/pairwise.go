package kernel

import (
	"math"

	"repro/internal/vec"
)

// Pairwise evaluates the regularized Biot–Savart interaction between a
// single source vortex element and a target point. It is the innermost
// computational kernel of both the direct solver and the tree code.
//
// With r = x_target − x_source, ρ = |r|/σ and F(r) = q(ρ)/|r|³ the
// velocity contribution is
//
//	u = −(1/4π) F(r) · r × α,
//
// and the velocity gradient contribution is
//
//	∂u_i/∂x_j = −(1/4π) [ (F'(r)/|r|) (r×α)_i r_j + F(r) ε_{ijl} α_l ].
//
// F'(r)/|r| = H(ρ)/σ⁵ with H(ρ) = (ρ q'(ρ) − 3 q(ρ))/ρ⁵; H is evaluated
// from a Taylor series for small ρ because the two terms cancel to
// leading order there.
type Pairwise struct {
	Sm    Smoothing
	Sigma float64
}

// hSwitch is the scaled radius below which H(ρ) switches to its series
// form. At the switch point both branches agree to better than 1e-6
// relative for all kernels in this package (verified by tests): the
// direct form loses ~4 digits to cancellation there while the series
// truncation error is O(ρ⁶) ≈ 1e-7.
const hSwitch = 0.02

// h evaluates H(ρ) = (ρ q'(ρ) − 3 q(ρ))/ρ⁵.
func (pw Pairwise) h(rho float64) float64 {
	return pw.hWithQ(rho, pw.Sm.Q(rho))
}

// fOf evaluates F(r) = q(ρ)/|r|³. Below hSwitch the quotient is taken
// through the ζ series of q — q(ρ) = 4π(ζ0 ρ³/3 + ζ1 ρ⁵/5 + …) — whose
// ρ³ factor cancels |r|³ analytically:
//
//	F = 4π(ζ0/3 + ζ1 ρ²/5 + ζ2 ρ⁴/7 + ζ3 ρ⁶/9)/σ³.
//
// The direct quotient underflows for denormal separations (q → 0 and
// |r|³ → 0 produce 0/0 = NaN near |r| ≈ 1e-108), while the series form
// stays finite down to |r| = 0. The truly singular kernel (q ≡ 1,
// ζ ≡ 0) keeps the direct form: it has no series and diverges by
// definition.
func (pw Pairwise) fOf(rho, d2, d float64) float64 {
	if rho < hSwitch {
		//lint:ignore floateq exact zero is the "kernel has no series" flag set by construction, never computed
		if z := pw.Sm.ZetaSeries(); z[0] != 0 {
			r2 := rho * rho
			s3 := pw.Sigma * pw.Sigma * pw.Sigma
			return 4 * math.Pi * (z[0]/3 + r2*(z[1]/5+r2*(z[2]/7+r2*(z[3]/9)))) / s3
		}
	}
	return pw.Sm.Q(rho) / (d2 * d)
}

// hWithQ is h for callers that already hold q(ρ): VelocityGrad needs
// q(ρ) for the velocity anyway, and reusing it here removes one of the
// two q evaluations from the innermost loop of every interaction
// (bitwise-neutral — both call sites computed the identical value).
// The q argument is ignored below hSwitch, where the series form needs
// no q.
func (pw Pairwise) hWithQ(rho, q float64) float64 {
	if rho < hSwitch {
		// Series: q = 4π(ζ0 ρ³/3 + ζ2 ρ⁵/5 + ζ4 ρ⁷/7 + ζ6 ρ⁹/9 + …)
		// ⇒ ρq' − 3q = 4π((2/5)ζ2 ρ⁵ + (4/7)ζ4 ρ⁷ + (6/9)ζ6 ρ⁹ + …).
		z := pw.Sm.ZetaSeries()
		r2 := rho * rho
		return 4 * math.Pi * (2.0/5*z[1] + r2*(4.0/7*z[2]+r2*(6.0/9*z[3])))
	}
	r5 := rho * rho * rho * rho * rho
	return (rho*pw.Sm.QPrime(rho) - 3*q) / r5
}

// Velocity returns the velocity induced at the target by a source with
// circulation vector alpha; r is the target position minus the source
// position. The contribution of a source at zero separation is zero.
func (pw Pairwise) Velocity(r, alpha vec.Vec3) vec.Vec3 {
	d2 := r.Norm2()
	//lint:ignore floateq exact zero separation is the documented self-interaction cutoff
	if d2 == 0 {
		return vec.Zero3
	}
	d := math.Sqrt(d2)
	rho := d / pw.Sigma
	f := pw.fOf(rho, d2, d)
	return r.Cross(alpha).Scale(-f / (4 * math.Pi))
}

// VelocityGrad returns both the induced velocity and the velocity
// gradient tensor (∂u_i/∂x_j) at the target.
func (pw Pairwise) VelocityGrad(r, alpha vec.Vec3) (vec.Vec3, vec.Mat3) {
	d2 := r.Norm2()
	//lint:ignore floateq exact zero separation is the documented self-interaction cutoff
	if d2 == 0 {
		return vec.Zero3, vec.Mat3{}
	}
	d := math.Sqrt(d2)
	rho := d / pw.Sigma
	var q float64
	if rho >= hSwitch {
		q = pw.Sm.Q(rho) // below hSwitch both fOf and hWithQ use the series
	}
	f := pw.fOf(rho, d2, d)
	inv4pi := 1 / (4 * math.Pi)

	rxA := r.Cross(alpha)
	u := rxA.Scale(-f * inv4pi)

	s5 := pw.Sigma * pw.Sigma * pw.Sigma * pw.Sigma * pw.Sigma
	fpOverR := pw.hWithQ(rho, q) / s5

	grad := vec.Outer(rxA, r).Scale(-fpOverR * inv4pi)
	// ε_{ijl} α_l term: matrix M with M v = v × α.
	m := vec.Mat3{
		{0, alpha.Z, -alpha.Y},
		{-alpha.Z, 0, alpha.X},
		{alpha.Y, -alpha.X, 0},
	}
	grad = grad.Add(m.Scale(-f * inv4pi))
	return u, grad
}

// StretchClassical returns the classical stretching term (α·∇)u for a
// target with circulation alpha and velocity gradient grad
// ((∇u)_{ij} = ∂u_i/∂x_j): component i is Σ_j α_j ∂u_i/∂x_j.
func StretchClassical(grad vec.Mat3, alpha vec.Vec3) vec.Vec3 {
	return grad.MulVec(alpha)
}

// StretchTranspose returns the transpose-scheme stretching term
// (α·∇ᵀ)u: component i is Σ_j α_j ∂u_j/∂x_i. The transpose scheme
// conserves total circulation exactly and is the form written in
// Eq. (6) of the paper.
func StretchTranspose(grad vec.Mat3, alpha vec.Vec3) vec.Vec3 {
	return grad.VecMul(alpha)
}

// Scheme selects the discretization of the vortex stretching term.
type Scheme int

const (
	// Transpose uses (α·∇ᵀ)u, the paper's formulation.
	Transpose Scheme = iota
	// Classical uses (α·∇)u.
	Classical
)

// Stretch applies the selected stretching scheme.
func (s Scheme) Stretch(grad vec.Mat3, alpha vec.Vec3) vec.Vec3 {
	if s == Classical {
		return StretchClassical(grad, alpha)
	}
	return StretchTranspose(grad, alpha)
}

func (s Scheme) String() string {
	if s == Classical {
		return "classical"
	}
	return "transpose"
}

// Coulomb evaluates the Plummer-softened Coulomb/gravity interaction used
// by the tree code's plasma discipline (the homogeneous neutral system of
// Fig. 5). With r = x_target − x_source and softening ε it returns the
// potential φ = Q/√(r²+ε²) and the field E = Q r/(r²+ε²)^(3/2)
// (Gaussian units, unit prefactor).
func Coulomb(r vec.Vec3, charge, eps float64) (phi float64, field vec.Vec3) {
	d2 := r.Norm2() + eps*eps
	//lint:ignore floateq exact zero: only the unsoftened coincident-point case divides by zero
	if d2 == 0 {
		return 0, vec.Zero3
	}
	inv := 1 / math.Sqrt(d2)
	phi = charge * inv
	field = r.Scale(charge * inv * inv * inv)
	return phi, field
}
