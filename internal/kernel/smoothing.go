// Package kernel implements the regularized interaction kernels of the
// vortex particle method and the Coulomb/gravity kernels used by the
// multi-purpose tree code.
//
// A vortex particle p carries a circulation vector α_p = ω(x_p)·vol_p.
// The regularized Biot–Savart law evaluates the velocity induced at x by
// all particles,
//
//	u(x) = −(1/4π) Σ_p q(|x−x_p|/σ) / |x−x_p|³ · (x−x_p) × α_p,
//
// where q(ρ) = ∫₀^ρ 4π s² ζ(s) ds is the fraction of circulation enclosed
// within radius ρσ for the radially symmetric smoothing function ζ. The
// paper (Speck et al., SC12) uses a sixth-order algebraic kernel from the
// generalized algebraic family of Speck's thesis; this package derives
// that family from first principles: a kernel has order m when ζ is
// normalized and its radial moments ∫ ζ ρ^j d³x vanish for even j ≤ m−2.
package kernel

import "math"

// Smoothing describes a radially symmetric smoothing function ζ and its
// derived quantities. All methods take the scaled radius ρ = r/σ.
type Smoothing interface {
	// Name identifies the kernel ("algebraic6", ...).
	Name() string
	// Order is the formal convergence order of the regularization.
	Order() int
	// Zeta evaluates the smoothing function ζ(ρ) (3D normalization:
	// ∫ ζ(|x|) d³x = 1).
	Zeta(rho float64) float64
	// Q evaluates the enclosed-circulation function
	// q(ρ) = ∫₀^ρ 4π s² ζ(s) ds; q(0)=0 and q(ρ)→1 as ρ→∞.
	Q(rho float64) float64
	// QPrime evaluates q'(ρ) = 4π ρ² ζ(ρ).
	QPrime(rho float64) float64
	// ZetaSeries returns the leading Taylor coefficients of ζ around
	// ρ=0: ζ(ρ) = z[0] + z[1]ρ² + z[2]ρ⁴ + z[3]ρ⁶ + O(ρ⁸). They are
	// used for the cancellation-free small-ρ evaluation of velocity
	// gradients.
	ZetaSeries() [4]float64
}

// algebraic is a generalized algebraic kernel
//
//	ζ(ρ) = (1/4π) (a + b ρ² + c ρ⁴) (1+ρ²)^(−p)
//
// whose enclosed-circulation function q has the closed form
//
//	q(ρ) = a·Ia(t) + b·Ib(t) + c·Ic(t),  t = ρ/√(1+ρ²),
//
// with the I’s polynomials in t obtained from exact antiderivatives. The
// coefficients (a,b,c,p) are chosen so that ζ is normalized and the
// required radial moments vanish (see the constructors below).
type algebraic struct {
	name    string
	order   int
	a, b, c float64
	p       float64 // exponent of (1+ρ²)
	q       func(t float64) float64
}

func (k *algebraic) Name() string { return k.name }
func (k *algebraic) Order() int   { return k.order }

// powNegHalfInt computes u^(−(n+½)) = 1/(uⁿ·√u) for u > 0 by repeated
// multiplication. Every kernel of the algebraic family has a
// half-integer exponent, and this form avoids math.Pow's exp/log round
// trip in the innermost loop of every interaction (it agrees with
// math.Pow to a few ulp, far below the kernels' 1e-6 accuracy budget).
func powNegHalfInt(u float64, n int) float64 {
	prod := math.Sqrt(u)
	for ; n > 0; n-- {
		prod *= u
	}
	return 1 / prod
}

func (k *algebraic) Zeta(rho float64) float64 {
	x := rho * rho
	n := int(k.p)
	//lint:ignore floateq exact half-integer exponents are constructor-set constants selecting the sqrt fast path
	if k.p != float64(n)+0.5 { // non-half-integer exponent: general path
		return (k.a + x*(k.b+x*k.c)) / (4 * math.Pi) * math.Pow(1+x, -k.p)
	}
	return (k.a + x*(k.b+x*k.c)) / (4 * math.Pi) * powNegHalfInt(1+x, n)
}

func (k *algebraic) QPrime(rho float64) float64 {
	return 4 * math.Pi * rho * rho * k.Zeta(rho)
}

func (k *algebraic) Q(rho float64) float64 {
	t := rho / math.Sqrt(1+rho*rho)
	return k.q(t)
}

func (k *algebraic) ZetaSeries() [4]float64 {
	// Expand (1+x)^(−p) = 1 − p x + p(p+1)/2 x² − p(p+1)(p+2)/6 x³ + …
	// against the numerator a + b x + c x², with x = ρ².
	p := k.p
	c2 := p * (p + 1) / 2
	c3 := p * (p + 1) * (p + 2) / 6
	inv4pi := 1 / (4 * math.Pi)
	return [4]float64{
		k.a * inv4pi,
		(k.b - p*k.a) * inv4pi,
		(k.c - p*k.b + c2*k.a) * inv4pi,
		(-p*k.c + c2*k.b - c3*k.a) * inv4pi,
	}
}

// Algebraic2 returns the classical second-order algebraic kernel
// (Rosenhead–Moore):
//
//	ζ₂(ρ) = (3/4π)(1+ρ²)^(−5/2),   q₂(ρ) = ρ³/(1+ρ²)^(3/2) = t³.
func Algebraic2() Smoothing {
	return &algebraic{
		name: "algebraic2", order: 2,
		a: 3, b: 0, c: 0, p: 5.0 / 2,
		q: func(t float64) float64 { return t * t * t },
	}
}

// WinckelmansLeonard returns the classical "high-order algebraic" kernel
// of Winckelmans & Leonard,
//
//	ζ(ρ) = (15/8π)(1+ρ²)^(−7/2),   q(ρ) = ρ³(ρ²+5/2)/(1+ρ²)^(5/2).
//
// Its far-field error decays like ρ⁻⁴ although its second radial moment
// does not vanish; it is included for comparison and carries Order 2 in
// the strict moment sense used by this package.
func WinckelmansLeonard() Smoothing {
	return &algebraic{
		name: "winckelmans-leonard", order: 2,
		a: 15.0 / 2, b: 0, c: 0, p: 7.0 / 2,
		q: func(t float64) float64 {
			// ρ³(ρ²+5/2)/(1+ρ²)^(5/2) in terms of t²=ρ²/(1+ρ²):
			// = t³(ρ²+5/2)/(1+ρ²) = t³(t² + (5/2)(1−t²)) = t³(5/2 − (3/2)t²).
			return t * t * t * (2.5 - 1.5*t*t)
		},
	}
}

// Algebraic4 returns the fourth-order member of the generalized algebraic
// family: the unique kernel
//
//	ζ₄(ρ) = (1/4π)(525/16 − 105/4·ρ²)(1+ρ²)^(−11/2)
//
// with unit mass and vanishing second radial moment.
func Algebraic4() Smoothing {
	const a, b = 525.0 / 16, -105.0 / 4
	return &algebraic{
		name: "algebraic4", order: 4,
		a: a, b: b, c: 0, p: 11.0 / 2,
		q: func(t float64) float64 {
			t2 := t * t
			t3 := t2 * t
			// ∫ s²(1+s²)^(−11/2) ds  = t³/3 − 3t⁵/5 + 3t⁷/7 − t⁹/9
			// ∫ s⁴(1+s²)^(−11/2) ds  = t⁵/5 − 2t⁷/7 + t⁹/9
			ia := t3 * (1.0/3 + t2*(-3.0/5+t2*(3.0/7+t2*(-1.0/9))))
			ib := t3 * t2 * (1.0/5 + t2*(-2.0/7+t2*(1.0/9)))
			return a*ia + b*ib
		},
	}
}

// Algebraic6 returns the sixth-order member of the generalized algebraic
// family used by the paper: the unique kernel
//
//	ζ₆(ρ) = (1/4π)(3675/64 − 735/8·ρ² + 105/8·ρ⁴)(1+ρ²)^(−13/2)
//
// with unit mass and vanishing second and fourth radial moments. Its
// enclosed-circulation function in t = ρ/√(1+ρ²) is
//
//	q₆ = a(t³/3 − 4t⁵/5 + 6t⁷/7 − 4t⁹/9 + t¹¹/11)
//	   + b(t⁵/5 − 3t⁷/7 + t⁹/3 − t¹¹/11)
//	   + c(t⁷/7 − 2t⁹/9 + t¹¹/11).
func Algebraic6() Smoothing {
	const a, b, c = 3675.0 / 64, -735.0 / 8, 105.0 / 8
	return &algebraic{
		name: "algebraic6", order: 6,
		a: a, b: b, c: c, p: 13.0 / 2,
		q: func(t float64) float64 {
			t2 := t * t
			t3 := t2 * t
			ia := t3 * (1.0/3 + t2*(-4.0/5+t2*(6.0/7+t2*(-4.0/9+t2*(1.0/11)))))
			ib := t3 * t2 * (1.0/5 + t2*(-3.0/7+t2*(1.0/3+t2*(-1.0/11))))
			ic := t3 * t2 * t2 * (1.0/7 + t2*(-2.0/9+t2*(1.0/11)))
			return a*ia + b*ib + c*ic
		},
	}
}

// gaussian is the second-order Gaussian kernel
// ζ(ρ) = (2π)^(−3/2) exp(−ρ²/2).
type gaussian struct{}

// Gaussian returns the second-order Gaussian smoothing kernel.
func Gaussian() Smoothing { return gaussian{} }

func (gaussian) Name() string { return "gaussian" }
func (gaussian) Order() int   { return 2 }

func (gaussian) Zeta(rho float64) float64 {
	return math.Exp(-rho*rho/2) / math.Pow(2*math.Pi, 1.5)
}

func (g gaussian) QPrime(rho float64) float64 {
	return 4 * math.Pi * rho * rho * g.Zeta(rho)
}

func (gaussian) Q(rho float64) float64 {
	// q(ρ) = erf(ρ/√2) − ρ √(2/π) e^(−ρ²/2)
	return math.Erf(rho/math.Sqrt2) - rho*math.Sqrt(2/math.Pi)*math.Exp(-rho*rho/2)
}

func (g gaussian) ZetaSeries() [4]float64 {
	z0 := 1 / math.Pow(2*math.Pi, 1.5)
	return [4]float64{z0, -z0 / 2, z0 / 8, -z0 / 48}
}

// Singular returns the unregularized Biot–Savart kernel (q ≡ 1). It is
// the σ→0 limit used by the far-field multipole approximation and by
// tests. Zeta is a delta distribution and therefore reported as zero for
// every ρ > 0 (and zero at ρ = 0 as well, by convention).
func Singular() Smoothing { return singular{} }

type singular struct{}

func (singular) Name() string           { return "singular" }
func (singular) Order() int             { return 0 }
func (singular) Zeta(float64) float64   { return 0 }
func (singular) Q(float64) float64      { return 1 }
func (singular) QPrime(float64) float64 { return 0 }
func (singular) ZetaSeries() [4]float64 { return [4]float64{} }

// ByName returns the smoothing kernel with the given Name, or nil when
// the name is unknown. Recognized names: "algebraic2", "algebraic4",
// "algebraic6", "winckelmans-leonard", "gaussian", "singular".
func ByName(name string) Smoothing {
	switch name {
	case "algebraic2":
		return Algebraic2()
	case "algebraic4":
		return Algebraic4()
	case "algebraic6":
		return Algebraic6()
	case "winckelmans-leonard":
		return WinckelmansLeonard()
	case "gaussian":
		return Gaussian()
	case "singular":
		return Singular()
	}
	return nil
}
