package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func allKernels() []Smoothing {
	return []Smoothing{
		Algebraic2(), Algebraic4(), Algebraic6(), WinckelmansLeonard(), Gaussian(),
	}
}

// integrate computes ∫_0^upper f(ρ) dρ with composite Simpson.
func integrate(f func(float64) float64, upper float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := upper / float64(n)
	sum := f(0) + f(upper)
	for i := 1; i < n; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

func TestZetaNormalization(t *testing.T) {
	for _, k := range allKernels() {
		mass := integrate(func(r float64) float64 {
			return 4 * math.Pi * r * r * k.Zeta(r)
		}, 200, 400000)
		if math.Abs(mass-1) > 2e-3 {
			t.Errorf("%s: ∫ζ d³x = %v, want 1", k.Name(), mass)
		}
	}
}

func TestMomentConditions(t *testing.T) {
	// Order-m kernels must have vanishing radial moments ∫ζρ^j d³x for
	// even j ≤ m−2; their absolute scale is O(1) so a small tolerance
	// on the numerical integral suffices.
	cases := []struct {
		k       Smoothing
		vanish  []int
		nonzero []int
	}{
		{Algebraic2(), nil, []int{2}},
		{Algebraic4(), []int{2}, []int{4}},
		{Algebraic6(), []int{2, 4}, nil},
		{WinckelmansLeonard(), nil, []int{2}},
		{Gaussian(), nil, []int{2}},
	}
	moment := func(k Smoothing, j int) float64 {
		return integrate(func(r float64) float64 {
			return 4 * math.Pi * math.Pow(r, float64(j)+2) * k.Zeta(r)
		}, 3000, 6000000)
	}
	for _, c := range cases {
		for _, j := range c.vanish {
			if m := moment(c.k, j); math.Abs(m) > 5e-2 {
				t.Errorf("%s: moment %d = %v, want 0", c.k.Name(), j, m)
			}
		}
		for _, j := range c.nonzero {
			if m := moment(c.k, j); math.Abs(m) < 0.1 {
				t.Errorf("%s: moment %d = %v, expected nonzero", c.k.Name(), j, m)
			}
		}
	}
}

func TestQLimits(t *testing.T) {
	for _, k := range allKernels() {
		if got := k.Q(0); got != 0 {
			t.Errorf("%s: q(0) = %v, want 0", k.Name(), got)
		}
		if got := k.Q(1e6); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: q(∞) = %v, want 1", k.Name(), got)
		}
	}
}

func TestQMatchesIntegralOfZeta(t *testing.T) {
	for _, k := range allKernels() {
		for _, rho := range []float64{0.1, 0.5, 1, 2, 5, 10} {
			want := integrate(func(s float64) float64 {
				return 4 * math.Pi * s * s * k.Zeta(s)
			}, rho, 20000)
			if got := k.Q(rho); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Errorf("%s: q(%v) = %v, ∫ = %v", k.Name(), rho, got, want)
			}
		}
	}
}

func TestQPrimeIsDerivativeOfQ(t *testing.T) {
	for _, k := range allKernels() {
		for _, rho := range []float64{0.05, 0.3, 1, 3, 8} {
			h := 1e-6 * (1 + rho)
			fd := (k.Q(rho+h) - k.Q(rho-h)) / (2 * h)
			if got := k.QPrime(rho); math.Abs(got-fd) > 1e-5*(1+math.Abs(fd)) {
				t.Errorf("%s: q'(%v) = %v, finite diff = %v", k.Name(), rho, got, fd)
			}
		}
	}
}

func TestQMonotoneForPositiveKernels(t *testing.T) {
	// ζ ≥ 0 for the 2nd-order kernels, so q must be nondecreasing.
	for _, k := range []Smoothing{Algebraic2(), WinckelmansLeonard(), Gaussian()} {
		f := func(a, b float64) bool {
			a, b = math.Abs(a), math.Abs(b)
			if a > b {
				a, b = b, a
			}
			return k.Q(a) <= k.Q(b)+1e-14
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
	}
}

func TestQBoundedProperty(t *testing.T) {
	// For every kernel |q(ρ)| stays bounded; for 2nd-order kernels
	// 0 ≤ q ≤ 1.
	for _, k := range allKernels() {
		f := func(x float64) bool {
			q := k.Q(math.Abs(x))
			return !math.IsNaN(q) && math.Abs(q) < 2.5
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
	}
}

func TestZetaSeriesMatchesZeta(t *testing.T) {
	for _, k := range allKernels() {
		z := k.ZetaSeries()
		for _, rho := range []float64{0.001, 0.01, 0.03} {
			r2 := rho * rho
			series := z[0] + r2*(z[1]+r2*(z[2]+r2*z[3]))
			if got := k.Zeta(rho); math.Abs(got-series) > 1e-8*(1+math.Abs(got)) {
				t.Errorf("%s: ζ(%v) = %v, series = %v", k.Name(), rho, got, series)
			}
		}
	}
}

func TestSixthOrderFarField(t *testing.T) {
	// 1−q(ρ) must decay like ρ^(−(order)) in the far field (it sets the
	// multipole-style error of replacing a blob by a point vortex).
	cases := []struct {
		k     Smoothing
		decay float64
	}{
		{Algebraic2(), 2},
		{WinckelmansLeonard(), 4},
		{Algebraic4(), 6}, // numerator tail s⁻⁷ ⇒ ρ⁻⁶ here
		{Algebraic6(), 6},
	}
	for _, c := range cases {
		r1, r2 := 20.0, 40.0
		e1, e2 := 1-c.k.Q(r1), 1-c.k.Q(r2)
		rate := math.Log(math.Abs(e1)/math.Abs(e2)) / math.Log(r2/r1)
		if math.Abs(rate-c.decay) > 0.35 {
			t.Errorf("%s: far-field decay rate %.2f, want %v", c.k.Name(), rate, c.decay)
		}
	}
}

func TestSingularKernel(t *testing.T) {
	s := Singular()
	if s.Q(0.5) != 1 || s.Q(100) != 1 {
		t.Fatal("singular kernel must have q ≡ 1")
	}
	if s.Zeta(1) != 0 || s.QPrime(1) != 0 {
		t.Fatal("singular kernel must have ζ = q' = 0 for ρ>0")
	}
}

func TestByName(t *testing.T) {
	names := []string{"algebraic2", "algebraic4", "algebraic6",
		"winckelmans-leonard", "gaussian", "singular"}
	for _, n := range names {
		k := ByName(n)
		if k == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
		if k.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, k.Name())
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown name must return nil")
	}
}

func TestKernelOrders(t *testing.T) {
	want := map[string]int{
		"algebraic2": 2, "algebraic4": 4, "algebraic6": 6,
		"winckelmans-leonard": 2, "gaussian": 2, "singular": 0,
	}
	for name, order := range want {
		if got := ByName(name).Order(); got != order {
			t.Errorf("%s: order %d, want %d", name, got, order)
		}
	}
}
