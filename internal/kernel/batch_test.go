package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// ulpDist is the integer distance between two float64 values on the
// ordered bit line (0: bitwise equal, 1 spans ±0; NaN vs non-NaN is
// maximal, NaN vs NaN is 0).
func ulpDist(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	ord := func(bits uint64) uint64 {
		if bits&(1<<63) != 0 {
			return ^bits
		}
		return bits | (1 << 63)
	}
	oa, ob := ord(math.Float64bits(a)), ord(math.Float64bits(b))
	if oa > ob {
		return oa - ob
	}
	return ob - oa
}

// refGradRange is the AoS reference the batch must match: the exact
// accumulation loop of the near-field evaluators, built on
// Pairwise.VelocityGrad.
func refGradRange(pw Pairwise, tx, ty, tz float64, xs, ys, zs, axs, ays, azs []float64, skip int) VortexAcc {
	var u vec.Vec3
	var g vec.Mat3
	var acc VortexAcc
	x := vec.V3(tx, ty, tz)
	for i := range xs {
		if i == skip {
			continue
		}
		du, dg := pw.VelocityGrad(x.Sub(vec.V3(xs[i], ys[i], zs[i])), vec.V3(axs[i], ays[i], azs[i]))
		u = u.Add(du)
		g = g.Add(dg)
		acc.N++
	}
	acc.UX, acc.UY, acc.UZ = u.X, u.Y, u.Z
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			acc.G[3*i+j] = g[i][j]
		}
	}
	return acc
}

// refVelRange mirrors the AoS velocity-only loop.
func refVelRange(pw Pairwise, tx, ty, tz float64, xs, ys, zs, axs, ays, azs []float64, skip int) VortexAcc {
	var u vec.Vec3
	var acc VortexAcc
	x := vec.V3(tx, ty, tz)
	for i := range xs {
		if i == skip {
			continue
		}
		u = u.Add(pw.Velocity(x.Sub(vec.V3(xs[i], ys[i], zs[i])), vec.V3(axs[i], ays[i], azs[i])))
		acc.N++
	}
	acc.UX, acc.UY, acc.UZ = u.X, u.Y, u.Z
	return acc
}

// refCoulombRange mirrors the AoS Coulomb loop.
func refCoulombRange(tx, ty, tz, eps float64, xs, ys, zs, qs []float64, skip int) CoulombAcc {
	var acc CoulombAcc
	var e vec.Vec3
	x := vec.V3(tx, ty, tz)
	for i := range xs {
		if i == skip {
			continue
		}
		dphi, de := Coulomb(x.Sub(vec.V3(xs[i], ys[i], zs[i])), qs[i], eps)
		acc.Phi += dphi
		e = e.Add(de)
		acc.N++
	}
	acc.EX, acc.EY, acc.EZ = e.X, e.Y, e.Z
	return acc
}

func checkVortexAcc(t *testing.T, ctx string, got, want VortexAcc, maxUlp uint64) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: interaction count %d, want %d", ctx, got.N, want.N)
	}
	if d := ulpDist(got.UX, want.UX); d > maxUlp {
		t.Fatalf("%s: UX off by %d ulp (%g vs %g)", ctx, d, got.UX, want.UX)
	}
	if d := ulpDist(got.UY, want.UY); d > maxUlp {
		t.Fatalf("%s: UY off by %d ulp (%g vs %g)", ctx, d, got.UY, want.UY)
	}
	if d := ulpDist(got.UZ, want.UZ); d > maxUlp {
		t.Fatalf("%s: UZ off by %d ulp (%g vs %g)", ctx, d, got.UZ, want.UZ)
	}
	for k := 0; k < 9; k++ {
		if d := ulpDist(got.G[k], want.G[k]); d > maxUlp {
			t.Fatalf("%s: G[%d] off by %d ulp (%g vs %g)", ctx, k, d, got.G[k], want.G[k])
		}
	}
}

var batchKernelNames = []string{
	"algebraic2", "algebraic4", "algebraic6",
	"winckelmans-leonard", "gaussian", "singular",
}

// randomLanes fills n source lanes with positions in a unit-scale cloud
// around the target and O(1) circulations.
func randomLanes(rng *rand.Rand, n int, tx, ty, tz float64) (xs, ys, zs, axs, ays, azs []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	zs = make([]float64, n)
	axs = make([]float64, n)
	ays = make([]float64, n)
	azs = make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = tx + rng.NormFloat64()
		ys[i] = ty + rng.NormFloat64()
		zs[i] = tz + rng.NormFloat64()
		axs[i] = rng.NormFloat64()
		ays[i] = rng.NormFloat64()
		azs[i] = rng.NormFloat64()
	}
	return
}

// TestBatchMatchesScalarReference sweeps every kernel over every range
// length from 0 to several full blocks (covering every remainder-loop
// length), with the skip index placed inside and outside the range, and
// requires the batched loops to stay within 1 ulp of the AoS reference
// — bitwise in practice on non-FMA builds.
func TestBatchMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, name := range batchKernelNames {
		pw := Pairwise{Sm: ByName(name), Sigma: 0.35}
		b := NewVortexBatch(pw)
		for n := 0; n <= 3*BatchWidth+1; n++ {
			tx, ty, tz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			xs, ys, zs, axs, ays, azs := randomLanes(rng, n, tx, ty, tz)
			if n > 2 {
				// One coincident source: exercises the d2 == 0 elision.
				xs[1], ys[1], zs[1] = tx, ty, tz
			}
			for _, skip := range []int{-1, 0, n / 2, n - 1} {
				var got VortexAcc
				b.AccumGradRange(&got, tx, ty, tz, xs, ys, zs, axs, ays, azs, skip)
				want := refGradRange(pw, tx, ty, tz, xs, ys, zs, axs, ays, azs, skip)
				checkVortexAcc(t, name, got, want, 1)

				var gotV VortexAcc
				b.AccumVelRange(&gotV, tx, ty, tz, xs, ys, zs, axs, ays, azs, skip)
				wantV := refVelRange(pw, tx, ty, tz, xs, ys, zs, axs, ays, azs, skip)
				checkVortexAcc(t, name+"/vel", gotV, wantV, 1)
			}
		}
	}
}

// TestBatchFarMatchesVelocityGrad checks the single-pair far-field leg
// against the AoS kernel for random separations, including the
// zero-separation early return.
func TestBatchFarMatchesVelocityGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range batchKernelNames {
		pw := Pairwise{Sm: ByName(name), Sigma: 0.2}
		b := NewVortexBatch(pw)
		for trial := 0; trial < 200; trial++ {
			r := vec.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			if trial == 0 {
				r = vec.Zero3
			}
			a := vec.V3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			var acc VortexAcc
			b.AccumGrad(&acc, r.X, r.Y, r.Z, a.X, a.Y, a.Z)
			u, g := pw.VelocityGrad(r, a)
			var want VortexAcc
			want.UX, want.UY, want.UZ = u.X, u.Y, u.Z
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					want.G[3*i+j] = g[i][j]
				}
			}
			checkVortexAcc(t, name+"/far", acc, want, 1)
		}
	}
}

// TestBatchCoulombMatchesScalarReference is the Coulomb analog of the
// range sweep.
func TestBatchCoulombMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, eps := range []float64{0, 1e-3, 0.1} {
		for n := 0; n <= 3*BatchWidth+1; n++ {
			tx, ty, tz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			xs, ys, zs, qs, _, _ := randomLanes(rng, n, tx, ty, tz)
			if n > 2 {
				xs[1], ys[1], zs[1] = tx, ty, tz // coincident (skipped only when eps == 0)
			}
			for _, skip := range []int{-1, 0, n - 1} {
				var got CoulombAcc
				AccumCoulombRange(&got, tx, ty, tz, eps, xs, ys, zs, qs, skip)
				want := refCoulombRange(tx, ty, tz, eps, xs, ys, zs, qs, skip)
				if got.N != want.N {
					t.Fatalf("eps=%g n=%d: count %d, want %d", eps, n, got.N, want.N)
				}
				if d := ulpDist(got.Phi, want.Phi); d > 1 {
					t.Fatalf("eps=%g n=%d: Phi off by %d ulp", eps, n, d)
				}
				for _, c := range [3][2]float64{{got.EX, want.EX}, {got.EY, want.EY}, {got.EZ, want.EZ}} {
					if d := ulpDist(c[0], c[1]); d > 1 {
						t.Fatalf("eps=%g n=%d: field off by %d ulp", eps, n, d)
					}
				}
			}
		}
	}
}

// fuzzLanes decodes fuzz bytes into bounded lane data: coordinates in
// [−10σ, 10σ] around the target, circulations in [−1, 1], with
// optional denormal circulation components and near/exactly coincident
// sources. Bounding keeps intermediate magnitudes out of overflow so
// the finiteness guarantee below is meaningful.
func fuzzLanes(rng *rand.Rand, n int, tx, ty, tz, sigma float64, denorm, coincide bool) (xs, ys, zs, axs, ays, azs []float64) {
	xs, ys, zs, axs, ays, azs = randomLanes(rng, n, 0, 0, 0)
	for i := 0; i < n; i++ {
		xs[i] = tx + xs[i]*3*sigma
		ys[i] = ty + ys[i]*3*sigma
		zs[i] = tz + zs[i]*3*sigma
	}
	if denorm && n > 0 {
		i := rng.Intn(n)
		axs[i] = math.SmallestNonzeroFloat64 * float64(1+rng.Intn(7))
		ays[i] = -math.SmallestNonzeroFloat64
		// A subnormal offset from the target: d² underflows to exactly
		// zero, taking the coincident-pair path.
		xs[i] = tx + math.SmallestNonzeroFloat64
		ys[i], zs[i] = ty, tz
	}
	if coincide && n > 1 {
		i := rng.Intn(n)
		xs[i], ys[i], zs[i] = tx, ty, tz
	}
	return
}

// FuzzBatchGradRange fuzzes the batched gradient loop against the AoS
// reference over random tail lengths (0..BatchWidth−1 beyond whole
// blocks), denormal circulations and coincident sources. The batch must
// stay within 1 ulp of the reference in every component, and for the
// regularized kernels must never produce NaN/Inf from finite bounded
// input.
func FuzzBatchGradRange(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), 0.3, false, false)
	f.Add(int64(2), uint8(3), uint8(1), 1.0, true, false)
	f.Add(int64(3), uint8(7), uint8(2), 0.02, false, true)
	f.Add(int64(4), uint8(5), uint8(0), 250.0, true, true)
	f.Fuzz(func(t *testing.T, seed int64, tail, blocks uint8, sigmaRaw float64, denorm, coincide bool) {
		sigma := sigmaRaw
		if !(sigma > 1e-3 && sigma < 1e3) { // also rejects NaN
			sigma = 0.5
		}
		n := int(blocks%3)*BatchWidth + int(tail%BatchWidth)
		rng := rand.New(rand.NewSource(seed))
		tx, ty, tz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		xs, ys, zs, axs, ays, azs := fuzzLanes(rng, n, tx, ty, tz, sigma, denorm, coincide)
		skip := -1
		if n > 0 && rng.Intn(2) == 0 {
			skip = rng.Intn(n)
		}
		for _, name := range batchKernelNames {
			pw := Pairwise{Sm: ByName(name), Sigma: sigma}
			b := NewVortexBatch(pw)
			var got VortexAcc
			b.AccumGradRange(&got, tx, ty, tz, xs, ys, zs, axs, ays, azs, skip)
			want := refGradRange(pw, tx, ty, tz, xs, ys, zs, axs, ays, azs, skip)
			checkVortexAcc(t, name, got, want, 1)
			if name != "singular" { // the singular kernel diverges at r→0 by definition
				vals := []float64{got.UX, got.UY, got.UZ}
				vals = append(vals, got.G[:]...)
				for k, v := range vals {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s: non-finite output %d (%g) from finite input", name, k, v)
					}
				}
			}
		}
	})
}

// FuzzBatchCoulombRange is the Coulomb analog: remainder loop + eps
// sweep, 1 ulp against the scalar reference, finite output for finite
// bounded input with nonzero softening.
func FuzzBatchCoulombRange(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1), 0.0, false)
	f.Add(int64(2), uint8(6), uint8(0), 1e-3, true)
	f.Add(int64(3), uint8(7), uint8(2), 0.5, false)
	f.Fuzz(func(t *testing.T, seed int64, tail, blocks uint8, epsRaw float64, coincide bool) {
		eps := epsRaw
		if !(eps >= 0 && eps < 1e3) {
			eps = 1e-3
		}
		n := int(blocks%3)*BatchWidth + int(tail%BatchWidth)
		rng := rand.New(rand.NewSource(seed))
		tx, ty, tz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		xs, ys, zs, qs, _, _ := randomLanes(rng, n, tx, ty, tz)
		if coincide && n > 0 {
			i := rng.Intn(n)
			xs[i], ys[i], zs[i] = tx, ty, tz
		}
		skip := -1
		if n > 0 && rng.Intn(2) == 0 {
			skip = rng.Intn(n)
		}
		var got CoulombAcc
		AccumCoulombRange(&got, tx, ty, tz, eps, xs, ys, zs, qs, skip)
		want := refCoulombRange(tx, ty, tz, eps, xs, ys, zs, qs, skip)
		if got.N != want.N {
			t.Fatalf("count %d, want %d", got.N, want.N)
		}
		for _, c := range [4][2]float64{{got.Phi, want.Phi}, {got.EX, want.EX}, {got.EY, want.EY}, {got.EZ, want.EZ}} {
			if d := ulpDist(c[0], c[1]); d > 1 {
				t.Fatalf("component off by %d ulp (%g vs %g)", d, c[0], c[1])
			}
			if math.IsNaN(c[0]) || math.IsInf(c[0], 0) {
				t.Fatalf("non-finite output %g from finite input", c[0])
			}
		}
	})
}
