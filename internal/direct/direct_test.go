package direct

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/particle"
	"repro/internal/vec"
)

// naiveEval is an independent scalar reference implementation.
func naiveEval(sys *particle.System, sm kernel.Smoothing, scheme kernel.Scheme) (vel, stretch []vec.Vec3) {
	n := sys.N()
	vel = make([]vec.Vec3, n)
	stretch = make([]vec.Vec3, n)
	pw := kernel.Pairwise{Sm: sm, Sigma: sys.Sigma}
	for q := 0; q < n; q++ {
		var grad vec.Mat3
		for p := 0; p < n; p++ {
			if p == q {
				continue
			}
			r := sys.Particles[q].Pos.Sub(sys.Particles[p].Pos)
			u, g := pw.VelocityGrad(r, sys.Particles[p].Alpha)
			vel[q] = vel[q].Add(u)
			grad = grad.Add(g)
		}
		stretch[q] = scheme.Stretch(grad, sys.Particles[q].Alpha)
	}
	return vel, stretch
}

func TestEvalMatchesNaive(t *testing.T) {
	sys := particle.RandomVortexBlob(60, 0.3, 5)
	for _, workers := range []int{1, 4} {
		s := New(kernel.Algebraic6(), kernel.Transpose, workers)
		vel := make([]vec.Vec3, sys.N())
		str := make([]vec.Vec3, sys.N())
		s.Eval(sys, vel, str)
		wantV, wantS := naiveEval(sys, kernel.Algebraic6(), kernel.Transpose)
		for i := range vel {
			if vel[i].Sub(wantV[i]).Norm() > 1e-13*(1+wantV[i].Norm()) {
				t.Fatalf("workers=%d vel[%d] = %v, want %v", workers, i, vel[i], wantV[i])
			}
			if str[i].Sub(wantS[i]).Norm() > 1e-13*(1+wantS[i].Norm()) {
				t.Fatalf("workers=%d stretch[%d] = %v, want %v", workers, i, str[i], wantS[i])
			}
		}
	}
}

func TestVelocitiesMatchEval(t *testing.T) {
	sys := particle.RandomVortexBlob(40, 0.3, 6)
	s := New(kernel.Algebraic2(), kernel.Transpose, 0)
	velA := make([]vec.Vec3, sys.N())
	str := make([]vec.Vec3, sys.N())
	velB := make([]vec.Vec3, sys.N())
	s.Eval(sys, velA, str)
	s.Velocities(sys, velB)
	for i := range velA {
		if velA[i].Sub(velB[i]).Norm() > 1e-14*(1+velA[i].Norm()) {
			t.Fatalf("vel mismatch at %d: %v vs %v", i, velA[i], velB[i])
		}
	}
}

func TestTransposeSchemeConservesTotalCirculation(t *testing.T) {
	// Σ_q dα_q/dt = 0 exactly for the transpose scheme.
	sys := particle.RandomVortexBlob(50, 0.4, 7)
	s := New(kernel.Algebraic6(), kernel.Transpose, 0)
	vel := make([]vec.Vec3, sys.N())
	str := make([]vec.Vec3, sys.N())
	s.Eval(sys, vel, str)
	var total, scale vec.Vec3
	for _, ds := range str {
		total = total.Add(ds)
		scale = scale.Add(vec.V3(math.Abs(ds.X), math.Abs(ds.Y), math.Abs(ds.Z)))
	}
	if total.Norm() > 1e-12*(scale.Norm()+1) {
		t.Fatalf("transpose scheme: Σ dα/dt = %v (scale %v)", total, scale.Norm())
	}
}

func TestClassicalSchemeDiffersFromTranspose(t *testing.T) {
	sys := particle.RandomVortexBlob(20, 0.4, 8)
	a := New(kernel.Algebraic6(), kernel.Transpose, 0)
	b := New(kernel.Algebraic6(), kernel.Classical, 0)
	vel := make([]vec.Vec3, sys.N())
	strT := make([]vec.Vec3, sys.N())
	strC := make([]vec.Vec3, sys.N())
	a.Eval(sys, vel, strT)
	b.Eval(sys, vel, strC)
	diff := 0.0
	for i := range strT {
		diff += strT[i].Sub(strC[i]).Norm()
	}
	if diff == 0 {
		t.Fatal("transpose and classical schemes should differ on a random blob")
	}
}

func TestTwoParticleVelocitySymmetry(t *testing.T) {
	// Two antiparallel straight vortex elements: the velocity each
	// induces on the other can be computed by hand via the pairwise
	// kernel; also u_1 from particle 2 equals −u_2 from particle 1 when
	// α_2 = α_1 (odd kernel).
	sigma := 0.2
	sys := &particle.System{Sigma: sigma, Particles: []particle.Particle{
		{Pos: vec.V3(0, 0, 0), Alpha: vec.V3(0, 0, 1)},
		{Pos: vec.V3(1, 0, 0), Alpha: vec.V3(0, 0, 1)},
	}}
	s := New(kernel.Algebraic6(), kernel.Transpose, 0)
	vel := make([]vec.Vec3, 2)
	str := make([]vec.Vec3, 2)
	s.Eval(sys, vel, str)
	pw := kernel.Pairwise{Sm: kernel.Algebraic6(), Sigma: sigma}
	want0 := pw.Velocity(vec.V3(-1, 0, 0), vec.V3(0, 0, 1))
	if vel[0].Sub(want0).Norm() > 1e-14 {
		t.Fatalf("vel[0] = %v, want %v", vel[0], want0)
	}
	if vel[0].Add(vel[1]).Norm() > 1e-14 {
		t.Fatalf("velocities not antisymmetric: %v %v", vel[0], vel[1])
	}
}

func TestCoulombMatchesNaive(t *testing.T) {
	sys := particle.HomogeneousCoulomb(50, 11)
	s := New(kernel.Algebraic2(), kernel.Transpose, 3)
	pot := make([]float64, sys.N())
	f := make([]vec.Vec3, sys.N())
	const eps = 0.01
	s.Coulomb(sys, eps, pot, f)
	for q := 0; q < sys.N(); q++ {
		phi := 0.0
		var e vec.Vec3
		for p := 0; p < sys.N(); p++ {
			if p == q {
				continue
			}
			dphi, de := kernel.Coulomb(sys.Particles[q].Pos.Sub(sys.Particles[p].Pos), sys.Particles[p].Charge, eps)
			phi += dphi
			e = e.Add(de)
		}
		if math.Abs(pot[q]-phi) > 1e-12*(1+math.Abs(phi)) {
			t.Fatalf("pot[%d] = %v, want %v", q, pot[q], phi)
		}
		if f[q].Sub(e).Norm() > 1e-12*(1+e.Norm()) {
			t.Fatalf("field[%d] = %v, want %v", q, f[q], e)
		}
	}
}

func TestStats(t *testing.T) {
	sys := particle.RandomVortexBlob(10, 0.3, 9)
	s := New(kernel.Algebraic6(), kernel.Transpose, 0)
	vel := make([]vec.Vec3, 10)
	str := make([]vec.Vec3, 10)
	s.Eval(sys, vel, str)
	s.Eval(sys, vel, str)
	st := s.Stats()
	if st.Evaluations != 2 {
		t.Fatalf("Evaluations = %d", st.Evaluations)
	}
	if st.Interactions != 2*10*9 {
		t.Fatalf("Interactions = %d", st.Interactions)
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestEvalPanicsOnBadSliceLength(t *testing.T) {
	sys := particle.RandomVortexBlob(5, 0.3, 10)
	s := New(kernel.Algebraic6(), kernel.Transpose, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Eval(sys, make([]vec.Vec3, 4), make([]vec.Vec3, 5))
}

func BenchmarkDirectEval1k(b *testing.B) {
	sys := particle.RandomVortexBlob(1000, 0.2, 1)
	s := New(kernel.Algebraic6(), kernel.Transpose, 0)
	vel := make([]vec.Vec3, sys.N())
	str := make([]vec.Vec3, sys.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval(sys, vel, str)
	}
}
