// Package direct implements the O(N²) direct-summation reference solver
// for the vortex particle method and the Coulomb discipline. It is the
// "exact" spatial solver used by the accuracy study of Section IV-A of
// the paper; the tree code converges to it as θ → 0.
package direct

import (
	"sync/atomic"

	"repro/internal/field"
	"repro/internal/kernel"
	"repro/internal/particle"
	"repro/internal/sched"
	"repro/internal/vec"
)

// Solver is a direct-summation evaluator. The zero value is not usable;
// construct with New.
type Solver struct {
	// Layout selects the evaluation storage: LayoutSoA (the New
	// default) gathers identity-ordered lanes once per evaluation and
	// runs the batched kernels; LayoutAoS is the reference loop. Both
	// sum sources in index order, so they are bitwise equal.
	Layout particle.Layout

	sm      kernel.Smoothing
	scheme  kernel.Scheme
	workers int

	evals        atomic.Int64
	interactions atomic.Int64

	// lanes is the SoA gather arena, reused across evaluations.
	lanes particle.SoA
}

// New returns a direct solver using the given smoothing kernel and
// stretching scheme. workers ≤ 0 selects GOMAXPROCS.
func New(sm kernel.Smoothing, scheme kernel.Scheme, workers int) *Solver {
	return &Solver{sm: sm, scheme: scheme, workers: workers, Layout: particle.LayoutSoA}
}

// Name implements field.Evaluator.
func (s *Solver) Name() string { return "direct/" + s.sm.Name() }

// Stats implements field.Evaluator.
func (s *Solver) Stats() field.Stats {
	return field.Stats{
		Evaluations:  s.evals.Load(),
		Interactions: s.interactions.Load(),
	}
}

// Eval computes velocity and stretching for every particle by direct
// summation over all source particles (self-interactions excluded by
// the kernel's zero-separation convention).
func (s *Solver) Eval(sys *particle.System, vel, stretch []vec.Vec3) {
	n := sys.N()
	if len(vel) != n || len(stretch) != n {
		panic("direct: Eval output slices must have length N")
	}
	s.evals.Add(1)
	s.interactions.Add(int64(n) * int64(n-1))
	pw := kernel.Pairwise{Sm: s.sm, Sigma: sys.Sigma}
	ps := sys.Particles

	if s.Layout == particle.LayoutSoA {
		l := &s.lanes
		l.GatherVortex(sys, nil) // identity order: lane p = particle p
		b := kernel.NewVortexBatch(pw)
		s.alignedRange(n, func(lo, hi int) {
			for q := lo; q < hi; q++ {
				var acc kernel.VortexAcc
				b.AccumGradRange(&acc, l.X[q], l.Y[q], l.Z[q],
					l.X, l.Y, l.Z, l.AX, l.AY, l.AZ, q)
				vel[q] = vec.V3(acc.UX, acc.UY, acc.UZ)
				grad := vec.Mat3{
					{acc.G[0], acc.G[1], acc.G[2]},
					{acc.G[3], acc.G[4], acc.G[5]},
					{acc.G[6], acc.G[7], acc.G[8]},
				}
				stretch[q] = s.scheme.Stretch(grad, ps[q].Alpha)
			}
		})
		return
	}
	s.parallelRange(n, func(lo, hi int) {
		for q := lo; q < hi; q++ {
			var u vec.Vec3
			var grad vec.Mat3
			xq := ps[q].Pos
			for p := 0; p < n; p++ {
				if p == q {
					continue
				}
				du, dg := pw.VelocityGrad(xq.Sub(ps[p].Pos), ps[p].Alpha)
				u = u.Add(du)
				grad = grad.Add(dg)
			}
			vel[q] = u
			stretch[q] = s.scheme.Stretch(grad, ps[q].Alpha)
		}
	})
}

// Velocities computes only the induced velocities (no stretching); it
// is cheaper when the gradient is not needed.
func (s *Solver) Velocities(sys *particle.System, vel []vec.Vec3) {
	n := sys.N()
	if len(vel) != n {
		panic("direct: Velocities output slice must have length N")
	}
	s.evals.Add(1)
	s.interactions.Add(int64(n) * int64(n-1))
	pw := kernel.Pairwise{Sm: s.sm, Sigma: sys.Sigma}
	ps := sys.Particles
	if s.Layout == particle.LayoutSoA {
		l := &s.lanes
		l.GatherVortex(sys, nil)
		b := kernel.NewVortexBatch(pw)
		s.alignedRange(n, func(lo, hi int) {
			for q := lo; q < hi; q++ {
				var acc kernel.VortexAcc
				b.AccumVelRange(&acc, l.X[q], l.Y[q], l.Z[q],
					l.X, l.Y, l.Z, l.AX, l.AY, l.AZ, q)
				vel[q] = vec.V3(acc.UX, acc.UY, acc.UZ)
			}
		})
		return
	}
	s.parallelRange(n, func(lo, hi int) {
		for q := lo; q < hi; q++ {
			var u vec.Vec3
			xq := ps[q].Pos
			for p := 0; p < n; p++ {
				if p == q {
					continue
				}
				u = u.Add(pw.Velocity(xq.Sub(ps[p].Pos), ps[p].Alpha))
			}
			vel[q] = u
		}
	})
}

// Coulomb computes the softened Coulomb potential and field at every
// particle from all other particles.
func (s *Solver) Coulomb(sys *particle.System, eps float64, pot []float64, f []vec.Vec3) {
	n := sys.N()
	if len(pot) != n || len(f) != n {
		panic("direct: Coulomb output slices must have length N")
	}
	s.evals.Add(1)
	s.interactions.Add(int64(n) * int64(n-1))
	ps := sys.Particles
	if s.Layout == particle.LayoutSoA {
		l := &s.lanes
		l.GatherCoulomb(sys, nil)
		s.alignedRange(n, func(lo, hi int) {
			for q := lo; q < hi; q++ {
				var acc kernel.CoulombAcc
				kernel.AccumCoulombRange(&acc, l.X[q], l.Y[q], l.Z[q], eps,
					l.X, l.Y, l.Z, l.Q, q)
				pot[q] = acc.Phi
				f[q] = vec.V3(acc.EX, acc.EY, acc.EZ)
			}
		})
		return
	}
	s.parallelRange(n, func(lo, hi int) {
		for q := lo; q < hi; q++ {
			phi := 0.0
			var e vec.Vec3
			xq := ps[q].Pos
			for p := 0; p < n; p++ {
				if p == q {
					continue
				}
				dphi, de := kernel.Coulomb(xq.Sub(ps[p].Pos), ps[p].Charge, eps)
				phi += dphi
				e = e.Add(de)
			}
			pot[q] = phi
			f[q] = e
		}
	})
}

// parallelRange distributes [0,n) over the worker pool with the
// work-stealing scheduler; every index is processed exactly once and
// each target's sum is independent, so results do not depend on the
// schedule.
func (s *Solver) parallelRange(n int, fn func(lo, hi int)) {
	sched.Run(s.workers, n, 0, func(_, lo, hi int) { fn(lo, hi) })
}

// alignedRange is parallelRange with claim and steal boundaries on
// BatchWidth multiples, so every worker's SoA inner loops start on a
// full batch block.
func (s *Solver) alignedRange(n int, fn func(lo, hi int)) {
	sched.RunAligned(s.workers, n, 0, kernel.BatchWidth, func(_, lo, hi int) { fn(lo, hi) })
}

var _ field.Evaluator = (*Solver)(nil)
