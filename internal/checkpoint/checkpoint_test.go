package checkpoint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/particle"
)

func TestRoundTrip(t *testing.T) {
	sys := particle.RandomVortexBlob(137, 0.42, 9)
	sys.Particles[3].Charge = -2.5
	sys.Particles[5].Label = 99

	var buf bytes.Buffer
	if err := Write(&buf, sys); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sigma != sys.Sigma || got.N() != sys.N() {
		t.Fatalf("header mismatch: %v %d", got.Sigma, got.N())
	}
	for i := range sys.Particles {
		if got.Particles[i] != sys.Particles[i] {
			t.Fatalf("particle %d: %+v vs %+v", i, got.Particles[i], sys.Particles[i])
		}
	}
}

func TestEmptySystem(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &particle.System{Sigma: 1.5}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || got.Sigma != 1.5 {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestCorruptionDetected(t *testing.T) {
	sys := particle.RandomVortexBlob(20, 0.3, 11)
	var buf bytes.Buffer
	if err := Write(&buf, sys); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[40] ^= 0xff // flip a byte inside the first record
	if _, err := Read(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Read(strings.NewReader("XXXXxxxxxxxxxxxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(strings.NewReader("NB")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedPayload(t *testing.T) {
	sys := particle.RandomVortexBlob(10, 0.3, 13)
	var buf bytes.Buffer
	if err := Write(&buf, sys); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-30]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nbck")
	sys := particle.SphericalVortexSheet(particle.ScaledSheet(64))
	if err := Save(path, sys); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 64 {
		t.Fatalf("loaded %d particles", got.N())
	}
	if _, err := Load(filepath.Join(dir, "missing.nbck")); err == nil {
		t.Fatal("missing file accepted")
	}
}
