package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/particle"
)

func TestLevelsRoundTrip(t *testing.T) {
	st := &LevelState{
		Block:     3,
		StepsDone: 12,
		TimeRanks: 4,
		T:         0.75,
		U: [][]float64{
			{1.5, -2.25, 3.125, 0},
			{0.5, 0.25},
		},
	}
	var buf bytes.Buffer
	if err := WriteLevels(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLevels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Block != st.Block || got.StepsDone != st.StepsDone ||
		got.TimeRanks != st.TimeRanks || got.T != st.T {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.U) != len(st.U) {
		t.Fatalf("level count %d", len(got.U))
	}
	for l := range st.U {
		for i := range st.U[l] {
			if got.U[l][i] != st.U[l][i] {
				t.Fatalf("level %d elem %d: %g vs %g", l, i, got.U[l][i], st.U[l][i])
			}
		}
	}
}

func TestLevelsCorruptionDetected(t *testing.T) {
	st := &LevelState{Block: 1, StepsDone: 4, TimeRanks: 2, T: 0.5, U: [][]float64{{1, 2, 3}}}
	var buf bytes.Buffer
	if err := WriteLevels(&buf, st); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip one payload byte: the checksum must catch it.
	for _, idx := range []int{5, 20, 50, len(clean) - 9} {
		tampered := append([]byte(nil), clean...)
		tampered[idx] ^= 0x40
		if _, err := ReadLevels(bytes.NewReader(tampered)); err == nil {
			t.Fatalf("byte %d flip went undetected", idx)
		}
	}
	// Truncation at every prefix length must error, not panic.
	for n := 0; n < len(clean); n += 7 {
		if _, err := ReadLevels(bytes.NewReader(clean[:n])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestLevelsImplausibleHeaderBounds(t *testing.T) {
	// A header claiming 2^40 elements with no payload must be rejected
	// quickly without attempting the allocation.
	var buf bytes.Buffer
	st := &LevelState{U: [][]float64{{1}}}
	if err := WriteLevels(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4+44+4] = 0xff // dim field of level 0 → huge
	if _, err := ReadLevels(bytes.NewReader(raw)); err == nil {
		t.Fatal("huge dim accepted")
	}
}

func TestSaveLoadLevels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "block.nblv")
	st := &LevelState{Block: 7, StepsDone: 28, TimeRanks: 4, T: 1.75, U: [][]float64{{9, 8, 7}}}
	if err := SaveLevels(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLevels(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Block != 7 || got.U[0][2] != 7 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := LoadLevels(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// tornWriter fails permanently after n bytes, simulating a crash in
// the middle of writing a checkpoint.
type tornWriter struct {
	w    io.Writer
	left int
}

var errTorn = errors.New("simulated crash mid-write")

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, errTorn
	}
	if len(p) > t.left {
		n, _ := t.w.Write(p[:t.left])
		t.left = 0
		return n, errTorn
	}
	t.left -= len(p)
	return t.w.Write(p)
}

// TestTornWritePreservesPreviousCheckpoint is the torn-write
// regression test: a crash midway through an overwrite must leave the
// previous checkpoint file fully intact and loadable.
func TestTornWritePreservesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nbck")
	sys := particle.RandomVortexBlob(31, 0.4, 3)
	if err := Save(path, sys); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Now crash partway through an overwrite with different contents.
	testTornWrite = func(w io.Writer) io.Writer { return &tornWriter{w: w, left: 40} }
	defer func() { testTornWrite = nil }()
	sys2 := particle.RandomVortexBlob(31, 0.4, 4)
	if err := Save(path, sys2); err == nil {
		t.Fatal("torn save reported success")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint gone: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("previous checkpoint bytes changed by a failed overwrite")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("previous checkpoint unreadable: %v", err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after failed save", len(entries))
	}
}

func TestTornLevelSaveToo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.nblv")
	st := &LevelState{Block: 1, U: [][]float64{{1, 2}}}
	if err := SaveLevels(path, st); err != nil {
		t.Fatal(err)
	}
	testTornWrite = func(w io.Writer) io.Writer { return &tornWriter{w: w, left: 10} }
	defer func() { testTornWrite = nil }()
	if err := SaveLevels(path, &LevelState{Block: 2, U: [][]float64{{3, 4}}}); err == nil {
		t.Fatal("torn save reported success")
	}
	got, err := LoadLevels(path)
	if err != nil || got.Block != 1 {
		t.Fatalf("previous level checkpoint damaged: %v %+v", err, got)
	}
}

// FuzzReadLevels hardens the level reader the same way FuzzRead covers
// the particle reader: arbitrary bytes must produce a clean error or a
// valid state, never a panic or unbounded allocation.
func FuzzReadLevels(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteLevels(&seed, &LevelState{
		Block: 2, StepsDone: 8, TimeRanks: 4, T: 0.5,
		U: [][]float64{{1, 2, 3}, {4}},
	})
	f.Add(seed.Bytes())
	f.Add([]byte("NBLV"))
	f.Add([]byte{})
	huge := append([]byte("NBLV"), make([]byte, 44)...)
	huge[4] = 1    // version
	huge[43] = 0x7 // nLevels high byte → large
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadLevels(bytes.NewReader(data))
		if err == nil && st == nil {
			t.Fatal("nil state without error")
		}
	})
}
