package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/particle"
)

// FuzzRead hardens the reader: arbitrary input must yield a clean
// error or a valid system, never a panic or runaway allocation.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, particle.RandomVortexBlob(3, 0.5, 1))
	f.Add(seed.Bytes())
	f.Add([]byte("NBCK"))
	f.Add([]byte{})
	// A header claiming 2^31 particles with no payload.
	huge := append([]byte("NBCK"), make([]byte, 20)...)
	huge[4] = 1       // version
	huge[12+4] = 0x80 // count low bytes → large
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := Read(bytes.NewReader(data))
		if err == nil && sys == nil {
			t.Fatal("nil system without error")
		}
	})
}
