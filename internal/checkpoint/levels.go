package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
)

// Block-restart checkpoints for the resilient PFASST loop.
//
// Format (little-endian): magic "NBLV", version u32, block u64,
// stepsDone u64, timeRanks u64, t f64, nLevels u64, then per level:
// dim u64 + dim×f64, then (version ≥ 2) a diagnostics block of
// count u64 + count×f64 — and a trailing FNV-1a checksum over
// everything before it, like the particle format. Version 1 files
// (no diagnostics block) still read back with a nil Diag.
const (
	levelMagic   = "NBLV"
	levelVersion = 2

	// Bounds on untrusted header fields, enforced before the checksum
	// can verify so a corrupt file can't drive huge allocations.
	maxLevels   = 64
	maxLevelDim = 1 << 28
	maxDiag     = 64
)

// LevelState is a PFASST block-restart checkpoint: the solver's
// position in the time loop plus the level solution vectors needed to
// restart the block. Every time rank holds the identical block-start
// state (the block-end broadcast invariant), so any survivor's
// checkpoint can restart the whole communicator. TimeRanks records the
// communicator size at checkpoint time; a resume with a different size
// repartitions the remaining steps rather than trusting stale block
// indices.
type LevelState struct {
	Block     int     // block index about to run
	StepsDone int     // time steps fully committed before this block
	TimeRanks int     // time-communicator size at checkpoint time
	T         float64 // physical time at block start
	// U holds the per-level solution at block start, finest level
	// first. The resilient loop checkpoints only the fine vector
	// (coarse levels are rebuilt by restriction), but the format
	// carries the full hierarchy for solvers that need it.
	U [][]float64
	// Diag is an optional diagnostics block (the guard layer stores
	// the nine conserved invariants Ω, I, A of the fine state here):
	// a resume can then detect body corruption that slipped past the
	// file checksum by recomputing the invariants from U. Nil for
	// version 1 files and saves without a guard.
	Diag []float64
}

// WriteLevels serializes st to w.
func WriteLevels(w io.Writer, st *LevelState) error {
	if len(st.U) > maxLevels {
		return fmt.Errorf("checkpoint: %d levels exceeds limit %d", len(st.U), maxLevels)
	}
	if len(st.Diag) > maxDiag {
		return fmt.Errorf("checkpoint: %d diagnostics exceed limit %d", len(st.Diag), maxDiag)
	}
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)

	if _, err := mw.Write([]byte(levelMagic)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var hdr [44]byte
	binary.LittleEndian.PutUint32(hdr[0:], levelVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(int64(st.Block)))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(st.StepsDone)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(st.TimeRanks)))
	binary.LittleEndian.PutUint64(hdr[28:], math.Float64bits(st.T))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(len(st.U)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var b8 [8]byte
	for _, u := range st.U {
		binary.LittleEndian.PutUint64(b8[:], uint64(len(u)))
		if _, err := mw.Write(b8[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		buf := make([]byte, 8*len(u))
		for i, v := range u {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(st.Diag)))
	if _, err := mw.Write(b8[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, v := range st.Diag {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		if _, err := mw.Write(b8[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadLevels deserializes a state written by WriteLevels, verifying
// the magic, version, structural bounds and checksum. Corruption of
// any kind returns an error — never a panic — so a recovery path can
// fall back to an older checkpoint.
func ReadLevels(r io.Reader) (*LevelState, error) {
	h := fnv.New64a()
	tr := io.TeeReader(r, h)

	head := make([]byte, 4+44)
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, fmt.Errorf("checkpoint: short level header: %w: %w", ErrCorrupt, err)
	}
	if string(head[:4]) != levelMagic {
		return nil, fmt.Errorf("checkpoint: bad level magic %q: %w", head[:4], ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version < 1 || version > levelVersion {
		return nil, fmt.Errorf("checkpoint: unsupported level version %d: %w", version, ErrCorrupt)
	}
	st := &LevelState{
		Block:     int(int64(binary.LittleEndian.Uint64(head[8:]))),
		StepsDone: int(int64(binary.LittleEndian.Uint64(head[16:]))),
		TimeRanks: int(int64(binary.LittleEndian.Uint64(head[24:]))),
		T:         math.Float64frombits(binary.LittleEndian.Uint64(head[32:])),
	}
	if st.Block < 0 || st.StepsDone < 0 || st.TimeRanks < 0 {
		return nil, fmt.Errorf("checkpoint: negative level header field (block=%d steps=%d ranks=%d): %w",
			st.Block, st.StepsDone, st.TimeRanks, ErrCorrupt)
	}
	nLevels := binary.LittleEndian.Uint64(head[40:])
	if nLevels > maxLevels {
		return nil, fmt.Errorf("checkpoint: %d levels exceeds limit %d: %w", nLevels, maxLevels, ErrCorrupt)
	}
	st.U = make([][]float64, 0, nLevels)
	var b8 [8]byte
	for l := uint64(0); l < nLevels; l++ {
		if _, err := io.ReadFull(tr, b8[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: level %d: short dim: %w: %w", l, ErrCorrupt, err)
		}
		dim := binary.LittleEndian.Uint64(b8[:])
		if dim > maxLevelDim {
			return nil, fmt.Errorf("checkpoint: level %d: dim %d exceeds limit %d: %w", l, dim, maxLevelDim, ErrCorrupt)
		}
		// The dim is untrusted until the checksum verifies: read in
		// bounded chunks rather than pre-allocating dim outright.
		u := make([]float64, 0, min64(dim, 1<<16))
		buf := make([]byte, 8*min64(dim, 1<<13))
		for got := uint64(0); got < dim; {
			n := min64(dim-got, uint64(len(buf)/8))
			if _, err := io.ReadFull(tr, buf[:8*n]); err != nil {
				return nil, fmt.Errorf("checkpoint: level %d: short data at %d/%d: %w: %w", l, got, dim, ErrCorrupt, err)
			}
			for i := uint64(0); i < n; i++ {
				u = append(u, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
			}
			got += n
		}
		st.U = append(st.U, u)
	}
	if version >= 2 {
		if _, err := io.ReadFull(tr, b8[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: short diagnostics count: %w: %w", ErrCorrupt, err)
		}
		nd := binary.LittleEndian.Uint64(b8[:])
		if nd > maxDiag {
			return nil, fmt.Errorf("checkpoint: %d diagnostics exceed limit %d: %w", nd, maxDiag, ErrCorrupt)
		}
		for i := uint64(0); i < nd; i++ {
			if _, err := io.ReadFull(tr, b8[:]); err != nil {
				return nil, fmt.Errorf("checkpoint: short diagnostics: %w: %w", ErrCorrupt, err)
			}
			st.Diag = append(st.Diag, math.Float64frombits(binary.LittleEndian.Uint64(b8[:])))
		}
	}
	want := h.Sum64()
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: missing level checksum: %w: %w", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("checkpoint: level checksum mismatch (file %x, computed %x): %w", got, want, ErrCorrupt)
	}
	return st, nil
}

// SaveLevels writes a block checkpoint to a file atomically (see
// WriteFile): a crash mid-save leaves the previous checkpoint valid.
func SaveLevels(path string, st *LevelState) error {
	return WriteFile(path, func(w io.Writer) error { return WriteLevels(w, st) })
}

// LoadLevels reads a block checkpoint from a file.
func LoadLevels(path string) (*LevelState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return ReadLevels(f)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
