// Package checkpoint serializes particle systems to a compact binary
// format, so long vortex simulations (the paper's production runs span
// thousands of JUGENE core-hours) can be stopped and resumed, and
// snapshots of the Fig. 1 evolution can be archived for visualization.
//
// Format (little-endian): magic "NBCK", version u32, σ f64, count u64,
// then per particle: pos(3×f64), alpha(3×f64), vol f64, charge f64,
// label i64 — and a trailing FNV-1a checksum over everything before it.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"repro/internal/particle"
	"repro/internal/vec"
)

// ErrCorrupt is the typed sentinel wrapped by every corruption
// rejection of this package — bad magic, unsupported version, torn or
// truncated data, structural bounds violations, and checksum
// mismatches, across all three formats (NBCK, NBLV, NBLM). Callers
// distinguish "present but damaged" (errors.Is(err, ErrCorrupt) —
// refuse to restart silently) from "absent" (errors.Is(err,
// fs.ErrNotExist) — fresh start is safe).
var ErrCorrupt = errors.New("checkpoint: corrupt")

const (
	magic   = "NBCK"
	version = 1
	recSize = 9 * 8
)

// Write serializes the system to w.
func Write(w io.Writer, sys *particle.System) error {
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)

	if _, err := mw.Write([]byte(magic)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], math.Float64bits(sys.Sigma))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(sys.N()))
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var rec [recSize]byte
	for i := range sys.Particles {
		p := &sys.Particles[i]
		for j, v := range []float64{
			p.Pos.X, p.Pos.Y, p.Pos.Z,
			p.Alpha.X, p.Alpha.Y, p.Alpha.Z,
			p.Vol, p.Charge,
		} {
			binary.LittleEndian.PutUint64(rec[8*j:], math.Float64bits(v))
		}
		binary.LittleEndian.PutUint64(rec[64:], uint64(int64(p.Label)))
		if _, err := mw.Write(rec[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Read deserializes a system written by Write, verifying the magic,
// version and checksum.
func Read(r io.Reader) (*particle.System, error) {
	h := fnv.New64a()
	tr := io.TeeReader(r, h)

	head := make([]byte, 4+20)
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, fmt.Errorf("checkpoint: short header: %w: %w", ErrCorrupt, err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q: %w", head[:4], ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d: %w", v, ErrCorrupt)
	}
	sigma := math.Float64frombits(binary.LittleEndian.Uint64(head[8:]))
	count := binary.LittleEndian.Uint64(head[16:])
	const maxParticles = 1 << 32
	if count > maxParticles {
		return nil, fmt.Errorf("checkpoint: implausible particle count %d: %w", count, ErrCorrupt)
	}

	// Grow incrementally: the header's count is untrusted until the
	// checksum verifies, so never pre-allocate an attacker-controlled
	// amount.
	const chunk = 1 << 16
	initial := count
	if initial > chunk {
		initial = chunk
	}
	sys := &particle.System{Sigma: sigma, Particles: make([]particle.Particle, 0, initial)}
	rec := make([]byte, recSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(tr, rec); err != nil {
			return nil, fmt.Errorf("checkpoint: short record %d: %w: %w", i, ErrCorrupt, err)
		}
		f := func(j int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(rec[8*j:]))
		}
		sys.Particles = append(sys.Particles, particle.Particle{
			Pos:    vec.V3(f(0), f(1), f(2)),
			Alpha:  vec.V3(f(3), f(4), f(5)),
			Vol:    f(6),
			Charge: f(7),
			Label:  int(int64(binary.LittleEndian.Uint64(rec[64:]))),
		})
	}
	want := h.Sum64()
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: missing checksum: %w: %w", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %x, computed %x): %w", got, want, ErrCorrupt)
	}
	return sys, nil
}

// WriteFile atomically replaces path with the bytes produced by write.
// The payload goes to a temporary file in the same directory, is
// fsynced to stable storage, and only then renamed over path; the
// directory entry is fsynced afterwards so the rename itself survives
// a crash. A failure at any point — including a torn write or a crash
// mid-stream — leaves any previous file at path untouched, which is
// what makes checkpoints safe to overwrite in place from a fault
// handler.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := dirOf(path)
	tmp, err := os.CreateTemp(dir, ".nbck-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	var w io.Writer = tmp
	if testTornWrite != nil {
		w = testTornWrite(tmp)
	}
	if err := write(w); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// testTornWrite, when non-nil, wraps the temporary file's writer so
// tests can simulate a crash partway through a checkpoint write.
var testTornWrite func(io.Writer) io.Writer

// Save writes the system to a file (atomically, see WriteFile).
func Save(path string, sys *particle.System) error {
	return WriteFile(path, func(w io.Writer) error { return Write(w, sys) })
}

// Load reads a system from a file.
func Load(path string) (*particle.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
