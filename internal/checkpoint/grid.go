package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Grid checkpoints (format v3) for the PS>1 resilient loop: the fine
// state is partitioned over the spatial communicator, so one NBLV
// shard per spatial column is written by that column's slice-0 rank,
// and a single checksummed NBLM manifest binds the shards of one
// committed block together. The manifest is written atomically and
// LAST, after every shard of its block is durable and re-verified —
// so at any instant the manifest on disk names a complete, consistent
// set of shards: a crash mid-commit leaves the previous manifest (and
// its block-numbered shards, which are never overwritten) intact.
//
// Restore returns the full concatenated state, so a resume onto a
// DIFFERENT spatial width — or the shrink-recovery path, which is the
// same code — just re-partitions it (hot.BlockPartition).
//
// Manifest format (little-endian): magic "NBLM", version u32, block
// u64, stepsDone u64, timeRanks u64, spaceRanks u64, t f64, diag
// count u64 + count×f64 (the guard's global invariants of the full
// state), then per column: fine dim u64 + shard-file FNV-1a u64 — and
// a trailing FNV-1a checksum over everything before it.
const (
	gridMagic   = "NBLM"
	gridVersion = 1

	// maxCols bounds the untrusted column count of a manifest before
	// the checksum can verify.
	maxCols = 1 << 16
)

// GridState is the metadata of one committed grid checkpoint.
type GridState struct {
	Block      int     // block index about to run
	StepsDone  int     // time steps fully committed before this block
	TimeRanks  int     // PT at checkpoint time
	SpaceRanks int     // PS at checkpoint time == number of shards
	T          float64 // physical time at block start
	// Dims holds the fine-state length of each column's shard.
	Dims []int
	// ShardSums holds the FNV-1a checksum of each shard file's bytes.
	ShardSums []uint64
	// Diag carries the guard's conserved invariants of the FULL
	// (concatenated) state, so a resume onto any PS can revalidate.
	Diag []float64
}

// ManifestPath returns the manifest location under dir.
func ManifestPath(dir string) string { return filepath.Join(dir, "grid.nblm") }

// ShardPath returns the shard location of one (block, column) pair.
// Shard names carry the block index, so a new block's shards never
// overwrite the committed ones — the multi-file commit stays atomic.
func ShardPath(dir string, block, col int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-b%d-c%d.nblv", block, col))
}

// SaveGridShard atomically writes one column's block-restart state as
// a standard NBLV shard. st.Block names the block; the shard lands at
// ShardPath(dir, st.Block, col).
func SaveGridShard(dir string, col int, st *LevelState) error {
	return SaveLevels(ShardPath(dir, st.Block, col), st)
}

// WriteGridManifest serializes the manifest to w.
func WriteGridManifest(w io.Writer, g *GridState) error {
	if len(g.Dims) != g.SpaceRanks || len(g.ShardSums) != g.SpaceRanks {
		return fmt.Errorf("checkpoint: manifest wants %d dims and sums, got %d/%d",
			g.SpaceRanks, len(g.Dims), len(g.ShardSums))
	}
	if g.SpaceRanks > maxCols {
		return fmt.Errorf("checkpoint: %d columns exceed limit %d", g.SpaceRanks, maxCols)
	}
	if len(g.Diag) > maxDiag {
		return fmt.Errorf("checkpoint: %d diagnostics exceed limit %d", len(g.Diag), maxDiag)
	}
	h := fnv.New64a()
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write([]byte(gridMagic)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var hdr [44]byte
	binary.LittleEndian.PutUint32(hdr[0:], gridVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(int64(g.Block)))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(g.StepsDone)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(g.TimeRanks)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(g.SpaceRanks)))
	binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(g.T))
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(g.Diag)))
	if _, err := mw.Write(b8[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, v := range g.Diag {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		if _, err := mw.Write(b8[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	for i := 0; i < g.SpaceRanks; i++ {
		binary.LittleEndian.PutUint64(b8[:], uint64(int64(g.Dims[i])))
		if _, err := mw.Write(b8[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		binary.LittleEndian.PutUint64(b8[:], g.ShardSums[i])
		if _, err := mw.Write(b8[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadGridManifest deserializes a manifest, verifying magic, version,
// structural bounds and checksum. Corruption returns an error — never
// a panic.
func ReadGridManifest(r io.Reader) (*GridState, error) {
	h := fnv.New64a()
	tr := io.TeeReader(r, h)
	head := make([]byte, 4+44)
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, fmt.Errorf("checkpoint: short manifest header: %w: %w", ErrCorrupt, err)
	}
	if string(head[:4]) != gridMagic {
		return nil, fmt.Errorf("checkpoint: bad manifest magic %q: %w", head[:4], ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != gridVersion {
		return nil, fmt.Errorf("checkpoint: unsupported manifest version %d: %w", v, ErrCorrupt)
	}
	g := &GridState{
		Block:      int(int64(binary.LittleEndian.Uint64(head[8:]))),
		StepsDone:  int(int64(binary.LittleEndian.Uint64(head[16:]))),
		TimeRanks:  int(int64(binary.LittleEndian.Uint64(head[24:]))),
		SpaceRanks: int(int64(binary.LittleEndian.Uint64(head[32:]))),
		T:          math.Float64frombits(binary.LittleEndian.Uint64(head[40:])),
	}
	if g.Block < 0 || g.StepsDone < 0 || g.TimeRanks < 1 {
		return nil, fmt.Errorf("checkpoint: bad manifest header (block=%d steps=%d timeRanks=%d): %w",
			g.Block, g.StepsDone, g.TimeRanks, ErrCorrupt)
	}
	if g.SpaceRanks < 1 || g.SpaceRanks > maxCols {
		return nil, fmt.Errorf("checkpoint: manifest column count %d outside [1, %d]: %w", g.SpaceRanks, maxCols, ErrCorrupt)
	}
	var b8 [8]byte
	if _, err := io.ReadFull(tr, b8[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: short manifest diagnostics count: %w: %w", ErrCorrupt, err)
	}
	nd := binary.LittleEndian.Uint64(b8[:])
	if nd > maxDiag {
		return nil, fmt.Errorf("checkpoint: %d diagnostics exceed limit %d: %w", nd, maxDiag, ErrCorrupt)
	}
	for i := uint64(0); i < nd; i++ {
		if _, err := io.ReadFull(tr, b8[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: short manifest diagnostics: %w: %w", ErrCorrupt, err)
		}
		g.Diag = append(g.Diag, math.Float64frombits(binary.LittleEndian.Uint64(b8[:])))
	}
	for i := 0; i < g.SpaceRanks; i++ {
		if _, err := io.ReadFull(tr, b8[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: column %d: short dim: %w: %w", i, ErrCorrupt, err)
		}
		dim := int(int64(binary.LittleEndian.Uint64(b8[:])))
		if dim < 0 || dim > maxLevelDim {
			return nil, fmt.Errorf("checkpoint: column %d: dim %d outside [0, %d]: %w", i, dim, maxLevelDim, ErrCorrupt)
		}
		if _, err := io.ReadFull(tr, b8[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: column %d: short shard checksum: %w: %w", i, ErrCorrupt, err)
		}
		g.Dims = append(g.Dims, dim)
		g.ShardSums = append(g.ShardSums, binary.LittleEndian.Uint64(b8[:]))
	}
	want := h.Sum64()
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: missing manifest checksum: %w: %w", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("checkpoint: manifest checksum mismatch (file %x, computed %x): %w", got, want, ErrCorrupt)
	}
	return g, nil
}

// fileSum returns the FNV-1a checksum of a file's raw bytes along
// with the bytes themselves.
func fileSum(path string) ([]byte, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	h := fnv.New64a()
	h.Write(raw)
	return raw, h.Sum64(), nil
}

// CommitGridManifest finishes a grid checkpoint: it re-reads every
// shard of the block from disk (verifying parseability, block index
// and fine dimension against what the committing rank was told),
// records the shard-file checksums, writes the manifest atomically,
// and finally garbage-collects shards of other blocks (best effort —
// stale shards are harmless, the manifest is the source of truth).
// Call it from ONE rank, after every shard writer has completed; any
// failure leaves the previous manifest and its shards untouched.
func CommitGridManifest(dir string, g *GridState) error {
	if len(g.Dims) != g.SpaceRanks {
		return fmt.Errorf("checkpoint: manifest wants %d dims, got %d", g.SpaceRanks, len(g.Dims))
	}
	g.ShardSums = make([]uint64, g.SpaceRanks)
	for col := 0; col < g.SpaceRanks; col++ {
		path := ShardPath(dir, g.Block, col)
		raw, sum, err := fileSum(path)
		if err != nil {
			return fmt.Errorf("checkpoint: commit: shard %d: %w", col, err)
		}
		st, err := ReadLevels(strings.NewReader(string(raw)))
		if err != nil {
			return fmt.Errorf("checkpoint: commit: shard %d unreadable: %w", col, err)
		}
		if st.Block != g.Block {
			return fmt.Errorf("checkpoint: commit: shard %d holds block %d, want %d", col, st.Block, g.Block)
		}
		if len(st.U) == 0 || len(st.U[0]) != g.Dims[col] {
			return fmt.Errorf("checkpoint: commit: shard %d fine dim mismatch", col)
		}
		g.ShardSums[col] = sum
	}
	if err := WriteFile(ManifestPath(dir), func(w io.Writer) error {
		return WriteGridManifest(w, g)
	}); err != nil {
		return err
	}
	gcGridShards(dir, g.Block)
	return nil
}

// gcGridShards removes shards of blocks other than keep. Best effort:
// removal errors are ignored (a stale shard wastes disk, nothing else).
func gcGridShards(dir string, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	prefix := fmt.Sprintf("shard-b%d-c", keep)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "shard-b") || !strings.HasSuffix(name, ".nblv") {
			continue
		}
		if strings.HasPrefix(name, prefix) {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// GridLoad is a restored grid checkpoint: the manifest metadata plus
// the full concatenated fine state, ready to re-partition onto any
// spatial width.
type GridLoad struct {
	Block     int
	StepsDone int
	TimeRanks int
	T         float64
	// U is the full fine state, columns concatenated in order.
	U []float64
	// Diag carries the manifest's global invariants (nil without a
	// guard).
	Diag []float64
}

// LoadGrid restores a grid checkpoint from dir: the manifest is read
// and verified, then every shard it names is read, checked against
// the manifest's per-shard checksum, dimension and block index, and
// concatenated. Any inconsistency — a missing or truncated shard, a
// shard/manifest checksum mismatch, a dimension mismatch — returns an
// error naming the shard; the caller treats it like a missing
// checkpoint or aborts, never restarts from partial state.
func LoadGrid(dir string) (*GridLoad, error) {
	mf, err := os.Open(ManifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	g, err := ReadGridManifest(mf)
	mf.Close()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, d := range g.Dims {
		if d > maxLevelDim-total {
			return nil, fmt.Errorf("checkpoint: manifest total dim overflows limit %d", maxLevelDim)
		}
		total += d
	}
	out := &GridLoad{
		Block:     g.Block,
		StepsDone: g.StepsDone,
		TimeRanks: g.TimeRanks,
		T:         g.T,
		U:         make([]float64, 0, total),
		Diag:      g.Diag,
	}
	for col := 0; col < g.SpaceRanks; col++ {
		path := ShardPath(dir, g.Block, col)
		raw, sum, err := fileSum(path)
		if err != nil {
			// A shard the committed manifest names is gone: that is a
			// damaged checkpoint SET, not an absent checkpoint, so the
			// os error's ErrNotExist must not leak (a resume would treat
			// it as "no checkpoint" and silently restart from t0).
			return nil, fmt.Errorf("checkpoint: shard %d missing or unreadable (%s): %w", col, err.Error(), ErrCorrupt)
		}
		if sum != g.ShardSums[col] {
			return nil, fmt.Errorf("checkpoint: shard %d checksum mismatch with manifest (file %x, manifest %x): %w",
				col, sum, g.ShardSums[col], ErrCorrupt)
		}
		st, err := ReadLevels(strings.NewReader(string(raw)))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: shard %d: %w", col, err)
		}
		if st.Block != g.Block {
			return nil, fmt.Errorf("checkpoint: shard %d holds block %d, manifest wants %d: %w", col, st.Block, g.Block, ErrCorrupt)
		}
		if len(st.U) == 0 || len(st.U[0]) != g.Dims[col] {
			return nil, fmt.Errorf("checkpoint: shard %d fine dim %d, manifest wants %d: %w",
				col, lenFine(st), g.Dims[col], ErrCorrupt)
		}
		out.U = append(out.U, st.U[0]...)
	}
	return out, nil
}

func lenFine(st *LevelState) int {
	if len(st.U) == 0 {
		return 0
	}
	return len(st.U[0])
}
