package checkpoint

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gridFixture writes a complete committed grid checkpoint (ps shards +
// manifest) for one block into dir and returns the full state it
// represents.
func gridFixture(t *testing.T, dir string, block, ps int) []float64 {
	t.Helper()
	var full []float64
	dims := make([]int, ps)
	for col := 0; col < ps; col++ {
		dim := 6 * (col + 2) // unequal columns, like a real partition
		u := make([]float64, dim)
		for i := range u {
			u[i] = float64(block*1000+col*100+i) / 7
		}
		full = append(full, u...)
		dims[col] = dim
		st := &LevelState{
			Block:     block,
			StepsDone: block * 4,
			TimeRanks: 4,
			T:         0.25 * float64(block),
			U:         [][]float64{u, u[:dim/2]},
			Diag:      []float64{1, 2, 3},
		}
		if err := SaveGridShard(dir, col, st); err != nil {
			t.Fatal(err)
		}
	}
	g := &GridState{
		Block:      block,
		StepsDone:  block * 4,
		TimeRanks:  4,
		SpaceRanks: ps,
		T:          0.25 * float64(block),
		Dims:       dims,
		Diag:       []float64{7.5, -1.25},
	}
	if err := CommitGridManifest(dir, g); err != nil {
		t.Fatal(err)
	}
	return full
}

func TestGridRoundTrip(t *testing.T) {
	dir := t.TempDir()
	full := gridFixture(t, dir, 3, 4)
	got, err := LoadGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Block != 3 || got.StepsDone != 12 || got.TimeRanks != 4 || got.T != 0.75 {
		t.Fatalf("metadata: %+v", got)
	}
	if len(got.Diag) != 2 || got.Diag[0] != 7.5 || got.Diag[1] != -1.25 {
		t.Fatalf("diag: %v", got.Diag)
	}
	if len(got.U) != len(full) {
		t.Fatalf("full state length %d, want %d", len(got.U), len(full))
	}
	for i := range full {
		if got.U[i] != full[i] {
			t.Fatalf("state[%d] = %g, want %g", i, got.U[i], full[i])
		}
	}
}

// TestGridRestoreIsPartitionAgnostic: the load side returns the FULL
// concatenated state with no reference to the writing PS beyond shard
// bookkeeping — a checkpoint written at PS=4 restores fine for a run
// that will re-partition onto PS=2 (or any other width). That property
// is what lets resume and shrink-recovery share one code path.
func TestGridRestoreIsPartitionAgnostic(t *testing.T) {
	dir := t.TempDir()
	full := gridFixture(t, dir, 1, 4)
	got, err := LoadGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Re-partition the restored state onto PS=2 exactly like the block
	// decomposition does (contiguous particle ranges): the concatenation
	// must slice cleanly regardless of the original shard boundaries.
	n := len(got.U) / 6
	for newPS := 1; newPS <= 3; newPS++ {
		var rebuilt []float64
		for r := 0; r < newPS; r++ {
			lo, hi := 6*(n*r/newPS), 6*(n*(r+1)/newPS)
			rebuilt = append(rebuilt, got.U[lo:hi]...)
		}
		if len(rebuilt) != len(full) {
			t.Fatalf("PS=%d re-partition lost state", newPS)
		}
	}
}

func TestGridLoadMissingShard(t *testing.T) {
	dir := t.TempDir()
	gridFixture(t, dir, 0, 3)
	if err := os.Remove(ShardPath(dir, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(dir); err == nil {
		t.Fatal("missing shard not detected")
	}
}

func TestGridLoadTruncatedShard(t *testing.T) {
	dir := t.TempDir()
	gridFixture(t, dir, 0, 2)
	path := ShardPath(dir, 0, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(dir); err == nil {
		t.Fatal("truncated shard not detected")
	}
}

func TestGridLoadShardChecksumMismatch(t *testing.T) {
	dir := t.TempDir()
	gridFixture(t, dir, 0, 2)
	path := ShardPath(dir, 0, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte AND fix up nothing: the shard's own internal
	// checksum would catch it, but the manifest's file checksum fires
	// first (it guards even formats the shard parser would tolerate).
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadGrid(dir)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch with manifest") {
		t.Fatalf("want manifest checksum mismatch, got %v", err)
	}
}

// TestGridShardSwapDetected: two individually valid shards swapped on
// disk must fail the per-file checksums — the manifest binds each
// column's CONTENT, not just its existence.
func TestGridShardSwapDetected(t *testing.T) {
	dir := t.TempDir()
	gridFixture(t, dir, 0, 2)
	a, b := ShardPath(dir, 0, 0), ShardPath(dir, 0, 1)
	tmp := filepath.Join(dir, "swap.tmp")
	if err := os.Rename(a, tmp); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(b, a); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, b); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(dir); err == nil {
		t.Fatal("swapped shards not detected")
	}
}

func TestGridManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	gridFixture(t, dir, 0, 2)
	path := ManifestPath(dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{5, 20, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadGrid(dir); err == nil {
			t.Fatalf("manifest corruption at byte %d not detected", i)
		}
	}
}

// TestGridTornCommitPreservesPreviousCheckpoint is the multi-file
// atomicity regression: a crash partway through writing the NEXT
// block's manifest must leave the previous block's checkpoint fully
// restorable. Shards are block-numbered (never overwritten) and the
// manifest is renamed into place only when complete, so the torn
// commit is invisible.
func TestGridTornCommitPreservesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	full1 := gridFixture(t, dir, 1, 2)

	// Write block 2's shards fine, then tear the manifest write.
	for col := 0; col < 2; col++ {
		u := make([]float64, 12)
		st := &LevelState{Block: 2, StepsDone: 8, TimeRanks: 4, T: 0.5, U: [][]float64{u}}
		if err := SaveGridShard(dir, col, st); err != nil {
			t.Fatal(err)
		}
	}
	testTornWrite = func(w io.Writer) io.Writer { return &tornWriter{w: w, left: 30} }
	err := CommitGridManifest(dir, &GridState{
		Block: 2, StepsDone: 8, TimeRanks: 4, SpaceRanks: 2, T: 0.5,
		Dims: []int{12, 12},
	})
	testTornWrite = nil
	if err == nil {
		t.Fatal("torn manifest commit reported success")
	}

	got, err := LoadGrid(dir)
	if err != nil {
		t.Fatalf("previous checkpoint lost after torn commit: %v", err)
	}
	if got.Block != 1 || len(got.U) != len(full1) {
		t.Fatalf("restored block %d with %d floats, want block 1 with %d",
			got.Block, len(got.U), len(full1))
	}
	for i := range full1 {
		if got.U[i] != full1[i] {
			t.Fatalf("state[%d] changed after torn commit", i)
		}
	}
}

// TestGridCommitGCKeepsOnlyCommittedBlock: after a successful commit,
// shards of older blocks are collected; the committed block's survive.
func TestGridCommitGCKeepsOnlyCommittedBlock(t *testing.T) {
	dir := t.TempDir()
	gridFixture(t, dir, 1, 2)
	gridFixture(t, dir, 2, 2)
	if _, err := os.Stat(ShardPath(dir, 1, 0)); !os.IsNotExist(err) {
		t.Fatalf("stale block-1 shard survived GC (err=%v)", err)
	}
	if _, err := os.Stat(ShardPath(dir, 2, 1)); err != nil {
		t.Fatalf("committed block-2 shard missing: %v", err)
	}
	if got, err := LoadGrid(dir); err != nil || got.Block != 2 {
		t.Fatalf("load after GC: block %d, err %v", got.Block, err)
	}
}

func TestGridCommitRefusesBadShards(t *testing.T) {
	dir := t.TempDir()
	// No shards at all.
	err := CommitGridManifest(dir, &GridState{
		Block: 0, TimeRanks: 1, SpaceRanks: 1, Dims: []int{6},
	})
	if err == nil {
		t.Fatal("commit without shards succeeded")
	}
	// Shard present but wrong dimension.
	st := &LevelState{Block: 0, TimeRanks: 1, U: [][]float64{make([]float64, 12)}}
	if err := SaveGridShard(dir, 0, st); err != nil {
		t.Fatal(err)
	}
	err = CommitGridManifest(dir, &GridState{
		Block: 0, TimeRanks: 1, SpaceRanks: 1, Dims: []int{6},
	})
	if err == nil || !strings.Contains(err.Error(), "dim mismatch") {
		t.Fatalf("want dim mismatch, got %v", err)
	}
}

// FuzzGridManifest hardens the manifest reader: arbitrary bytes must
// yield a clean error or a structurally valid manifest, never a panic
// or runaway allocation.
func FuzzGridManifest(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteGridManifest(&seed, &GridState{
		Block: 1, StepsDone: 4, TimeRanks: 4, SpaceRanks: 2, T: 0.25,
		Dims: []int{12, 18}, ShardSums: []uint64{1, 2}, Diag: []float64{1, 2, 3},
	})
	f.Add(seed.Bytes())
	f.Add([]byte("NBLM"))
	f.Add([]byte{})
	// A header claiming a huge column count with no payload.
	huge := append([]byte("NBLM"), make([]byte, 44)...)
	huge[4] = 1     // version
	huge[35] = 0x7f // spaceRanks high byte → large
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGridManifest(bytes.NewReader(data))
		if err == nil {
			if g == nil {
				t.Fatal("nil manifest without error")
			}
			if len(g.Dims) != g.SpaceRanks || len(g.ShardSums) != g.SpaceRanks {
				t.Fatalf("inconsistent manifest accepted: %+v", g)
			}
			// Accepted manifests must round-trip bitwise.
			var out bytes.Buffer
			if err := WriteGridManifest(&out, g); err != nil {
				t.Fatalf("re-encode of accepted manifest failed: %v", err)
			}
			if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
				t.Fatal("accepted manifest does not round-trip")
			}
		}
	})
}
