package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	nbody "repro"
	"repro/internal/fault"
)

// Validation bounds of the admission layer. The daemon shares one
// process with every solve it runs, so specs are capped well below
// anything that could wedge the host: the limits are generous for the
// reproduction's workloads and tight against abuse.
const (
	maxTenantLen = 32
	maxParticles = 200000
	maxRanks     = 64
	maxSteps     = 4096
	maxRetryCap  = 10
)

// ErrBadSpec is the sentinel of admission-time spec rejections: the
// submitted JSON is malformed, names an unknown field or system kind,
// or violates a validation bound. Match with errors.Is; the wrapped
// message names the offending field.
var ErrBadSpec = errors.New("server: bad job spec")

// SystemSpec selects the initial particle ensemble of a job.
type SystemSpec struct {
	// Kind names a façade builder: "vortex" (the paper's sheet),
	// "scaled" (absolute-σ sheet), "coulomb" (homogeneous plasma) or
	// "blob" (Gaussian vortex cloud).
	Kind string `json:"kind"`
	// N is the particle count, in [1, 200000].
	N int `json:"n"`
	// Seed feeds the seeded builders (coulomb, blob).
	Seed int64 `json:"seed,omitempty"`
	// Sigma is the blob core size (blob only; must be positive there).
	Sigma float64 `json:"sigma,omitempty"`
}

// JobSpec is the wire form of one solver job: which system to build,
// the time interval and space-time grid to run it on, and the job's
// service envelope (tenant, deadline, retry budget, chaos plan).
// Decoding is strict — unknown fields are rejected — and Validate
// enforces the admission bounds before a spec reaches the queue.
type JobSpec struct {
	// Tenant is the submitting tenant's identifier, lowercase
	// [a-z0-9_], at most 32 bytes. Quotas and per-tenant metrics key
	// on it.
	Tenant string `json:"tenant"`
	// System selects the initial condition.
	System SystemSpec `json:"system"`
	// T0, T1 bound the integration interval (T1 > T0, both finite).
	T0 float64 `json:"t0"`
	T1 float64 `json:"t1"`
	// Steps is the total time step count; must be a positive multiple
	// of PT (whole PFASST blocks), at most 4096.
	Steps int `json:"steps"`
	// PT and PS shape the space-time grid; PT·PS ≤ 64 ranks.
	PT int `json:"pt"`
	PS int `json:"ps"`
	// Iterations, CoarseSweeps, ThetaFine, ThetaCoarse and Tol
	// override the PFASST(2,2,·) defaults when positive.
	Iterations   int     `json:"iterations,omitempty"`
	CoarseSweeps int     `json:"coarse_sweeps,omitempty"`
	ThetaFine    float64 `json:"theta_fine,omitempty"`
	ThetaCoarse  float64 `json:"theta_coarse,omitempty"`
	Tol          float64 `json:"tol,omitempty"`
	// DeadlineMS bounds the job's total wall time across all attempts,
	// in milliseconds; 0 inherits the daemon default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxRetries bounds retries of retryable (Agree-abort, injected
	// crash) failures, in [0, 10]; -1 inherits the daemon default.
	MaxRetries int `json:"max_retries,omitempty"`
	// FaultPlan and FaultSeed inject rank-level transport faults into
	// the solve itself (fault.Parse grammar); empty injects nothing.
	FaultPlan string `json:"fault_plan,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
}

// ParseJobSpec strictly decodes and validates a JSON job spec. Every
// rejection wraps ErrBadSpec.
func ParseJobSpec(data []byte) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	spec := &JobSpec{MaxRetries: -1}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the spec object", ErrBadSpec)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Validate enforces the admission bounds; every failure wraps
// ErrBadSpec and names the offending field.
func (s *JobSpec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if len(s.Tenant) == 0 || len(s.Tenant) > maxTenantLen {
		return bad("tenant %q length outside [1, %d]", s.Tenant, maxTenantLen)
	}
	for i := 0; i < len(s.Tenant); i++ {
		c := s.Tenant[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return bad("tenant %q: byte %d outside [a-z0-9_]", s.Tenant, i)
		}
	}
	switch s.System.Kind {
	case "vortex", "scaled", "coulomb":
	case "blob":
		if !(s.System.Sigma > 0) || math.IsInf(s.System.Sigma, 0) {
			return bad("blob sigma %v not positive finite", s.System.Sigma)
		}
	default:
		return bad("unknown system kind %q", s.System.Kind)
	}
	if s.System.N < 1 || s.System.N > maxParticles {
		return bad("n %d outside [1, %d]", s.System.N, maxParticles)
	}
	if s.PT < 1 || s.PS < 1 || s.PT*s.PS > maxRanks {
		return bad("grid %dx%d outside 1..%d ranks", s.PT, s.PS, maxRanks)
	}
	if s.Steps < 1 || s.Steps > maxSteps || s.Steps%s.PT != 0 {
		return bad("steps %d not a multiple of pt %d in [1, %d]", s.Steps, s.PT, maxSteps)
	}
	if math.IsNaN(s.T0) || math.IsInf(s.T0, 0) || math.IsNaN(s.T1) || math.IsInf(s.T1, 0) || !(s.T1 > s.T0) {
		return bad("interval [%v, %v] not finite increasing", s.T0, s.T1)
	}
	if s.Iterations < 0 || s.Iterations > 16 || s.CoarseSweeps < 0 || s.CoarseSweeps > 16 {
		return bad("iterations %d / coarse_sweeps %d outside [0, 16]", s.Iterations, s.CoarseSweeps)
	}
	for _, th := range []struct {
		name string
		v    float64
	}{{"theta_fine", s.ThetaFine}, {"theta_coarse", s.ThetaCoarse}} {
		if th.v < 0 || th.v > 1 || math.IsNaN(th.v) {
			return bad("%s %v outside [0, 1]", th.name, th.v)
		}
	}
	if s.Tol < 0 || math.IsNaN(s.Tol) || math.IsInf(s.Tol, 0) {
		return bad("tol %v negative or not finite", s.Tol)
	}
	if s.DeadlineMS < 0 {
		return bad("deadline_ms %d negative", s.DeadlineMS)
	}
	if s.MaxRetries < -1 || s.MaxRetries > maxRetryCap {
		return bad("max_retries %d outside [-1, %d]", s.MaxRetries, maxRetryCap)
	}
	if _, err := fault.Parse(s.FaultPlan, s.FaultSeed); err != nil {
		return bad("fault_plan: %v", err)
	}
	return nil
}

// Canonical returns the spec's canonical JSON encoding — the byte
// string journaled at submit and replayed on restart. encoding/json
// emits struct fields in declaration order, so the encoding is
// deterministic.
func (s *JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A validated spec of plain scalar fields cannot fail to
		// encode; treat it as programmer error.
		panic(fmt.Sprintf("server: canonical encode: %v", err))
	}
	return b
}

// Blocks returns the job's PFASST block count (steps / PT).
func (s *JobSpec) Blocks() int { return s.Steps / s.PT }

// Deadline resolves the job's total wall-time budget against the
// daemon default; 0 means unbounded.
func (s *JobSpec) Deadline(def time.Duration) time.Duration {
	if s.DeadlineMS > 0 {
		return time.Duration(s.DeadlineMS) * time.Millisecond
	}
	return def
}

// RetryBudget resolves the job's retry budget against the daemon
// default.
func (s *JobSpec) RetryBudget(def int) int {
	if s.MaxRetries >= 0 {
		return s.MaxRetries
	}
	if def < 0 {
		return 0
	}
	return def
}

// BuildSystem constructs the job's initial particle ensemble.
func (s *JobSpec) BuildSystem() (*nbody.System, error) {
	switch s.System.Kind {
	case "vortex":
		return nbody.VortexSheet(s.System.N), nil
	case "scaled":
		return nbody.ScaledVortexSheet(s.System.N), nil
	case "coulomb":
		return nbody.CoulombCloud(s.System.N, s.System.Seed), nil
	case "blob":
		return nbody.RandomBlob(s.System.N, s.System.Sigma, s.System.Seed), nil
	}
	return nil, fmt.Errorf("%w: unknown system kind %q", ErrBadSpec, s.System.Kind)
}

// SolverConfig materializes the solver configuration for one attempt:
// the paper's PFASST(2,2,·) defaults overridden by the spec, with
// resilient stepping, checkpointing and resume forced on — the
// daemon's crash-safety contract requires every job to leave a
// consistent resume point at each committed block.
func (s *JobSpec) SolverConfig(ckptDir string) nbody.SpaceTimeConfig {
	cfg := nbody.DefaultSpaceTime(s.PT, s.PS)
	if s.Iterations > 0 {
		cfg.Iterations = s.Iterations
	}
	if s.CoarseSweeps > 0 {
		cfg.CoarseSweeps = s.CoarseSweeps
	}
	if s.ThetaFine > 0 {
		cfg.ThetaFine = s.ThetaFine
	}
	if s.ThetaCoarse > 0 {
		cfg.ThetaCoarse = s.ThetaCoarse
	}
	if s.Tol > 0 {
		cfg.Tol = s.Tol
	}
	cfg.Resilience = nbody.ResilienceConfig{
		Enabled:       true,
		FaultPlan:     s.FaultPlan,
		FaultSeed:     s.FaultSeed,
		CheckpointDir: ckptDir,
		Resume:        true,
	}
	return cfg
}
