package server

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// checkNoGoroutineLeak runs fn and asserts the goroutine count
// returns to (near) its baseline within a grace period — the daemon
// must not strand workers, dispatchers, rank goroutines or timers.
func checkNoGoroutineLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(10 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after (leak)", before, after)
}

func TestDaemonNoGoroutineLeak(t *testing.T) {
	checkNoGoroutineLeak(t, func() {
		d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Workers = 2 })
		ids := submitAll(t, d, []*JobSpec{
			testSpec("alice", 61), testSpec("bob", 62), testSpec("alice", 63),
		})
		waitAllDone(t, d, ids)
		d.Close()
	})
}

func TestDrainNoGoroutineLeak(t *testing.T) {
	checkNoGoroutineLeak(t, func() {
		d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Workers = 1 })
		submitAll(t, d, []*JobSpec{
			drainSpec("alice", 64), drainSpec("alice", 65), drainSpec("bob", 66),
		})
		waitCond(t, 60*time.Second, "a job running", func() bool {
			for _, st := range d.Jobs() {
				if st.State == StateRunning {
					return true
				}
			}
			return false
		})
		if err := d.Drain(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFullQueueRejectsRatherThanGrows holds the single worker with a
// long job, fills the one-deep queue, and asserts the next submit is
// rejected typed — the queue never grows past its bound.
func TestFullQueueRejectsRatherThanGrows(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	defer d.Close()
	long, err := d.Submit(slowSpec("alice", 67))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "long job running", func() bool {
		st, _ := d.Job(long)
		return st.State == StateRunning
	})
	if _, err := d.Submit(testSpec("bob", 68)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(testSpec("carol", 69)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-full submit: %v, want ErrQueueFull", err)
	}
	if depth := d.q.lenQueued(); depth > 1 {
		t.Fatalf("queue depth %d exceeds bound 1", depth)
	}
	if got := d.Metrics().Counters["server.rejected.queue_full"]; got != 1 {
		t.Fatalf("queue_full rejections %d, want 1", got)
	}
}

// TestTenantQuotaRejectsTyped caps one tenant's queued jobs and
// asserts the quota rejection is per-tenant.
func TestTenantQuotaRejectsTyped(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 8
		c.TenantMaxQueued = 1
	})
	defer d.Close()
	long, err := d.Submit(slowSpec("alice", 70))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "long job running", func() bool {
		st, _ := d.Job(long)
		return st.State == StateRunning
	})
	if _, err := d.Submit(testSpec("alice", 71)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(testSpec("alice", 72)); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota submit: %v, want ErrQuota", err)
	}
	// Another tenant is untouched by alice's quota.
	if _, err := d.Submit(testSpec("bob", 73)); err != nil {
		t.Fatalf("bob rejected by alice's quota: %v", err)
	}
}

// TestShedOldestUnderLoad switches the full-queue policy to graceful
// degradation: the oldest queued job is evicted, typed, to admit the
// newest.
func TestShedOldestUnderLoad(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.ShedOldest = true
	})
	defer d.Close()
	long, err := d.Submit(slowSpec("alice", 74))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "long job running", func() bool {
		st, _ := d.Job(long)
		return st.State == StateRunning
	})
	victim, err := d.Submit(testSpec("bob", 75))
	if err != nil {
		t.Fatal(err)
	}
	kept, err := d.Submit(testSpec("carol", 76))
	if err != nil {
		t.Fatalf("shedding submit rejected: %v", err)
	}
	st, _ := d.Job(victim)
	if st.State != StateShed {
		t.Fatalf("victim state %q, want shed", st.State)
	}
	if kept == victim {
		t.Fatal("shed returned the new job")
	}
	if got := d.Metrics().Counters["server.jobs.shed"]; got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
}
