package server

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// drainSpec is heavy enough that a drain reliably catches it mid-run:
// 256 particles, 4 blocks.
func drainSpec(tenant string, seed int64) *JobSpec {
	spec := testSpec(tenant, seed)
	spec.System.N = 256
	return spec
}

// submitAll submits the specs and returns their IDs.
func submitAll(t *testing.T, d *Daemon, specs []*JobSpec) []uint64 {
	t.Helper()
	ids := make([]uint64, len(specs))
	for i, spec := range specs {
		id, err := d.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	return ids
}

// waitAllDone waits for every job to reach StateDone and returns their
// hashes keyed by ID.
func waitAllDone(t *testing.T, d *Daemon, ids []uint64) map[uint64]string {
	t.Helper()
	hashes := make(map[uint64]string, len(ids))
	for _, id := range ids {
		st, err := d.WaitJob(id, 120*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state %q (err %q), want done", id, st.State, st.Error)
		}
		hashes[id] = st.Hash
	}
	return hashes
}

// TestDrainRestartBitwiseIdentical is the drain/restart property test:
// N concurrent jobs, drain mid-block, restart on the same state
// directory — every job must complete bitwise-identically to an
// uninterrupted run.
func TestDrainRestartBitwiseIdentical(t *testing.T) {
	specs := []*JobSpec{
		drainSpec("alice", 11),
		drainSpec("alice", 12),
		drainSpec("bob", 13),
		drainSpec("bob", 14),
	}
	want := make([]string, len(specs))
	for i, spec := range specs {
		want[i] = fmt.Sprintf("%016x", cleanHash(t, spec))
	}

	dir := t.TempDir()
	d1 := newTestDaemon(t, dir, func(c *Config) { c.Workers = 1 })
	ids := submitAll(t, d1, specs)
	// Catch a job mid-run — at least one committed block, more to go —
	// then drain. The single worker keeps the rest queued, so the
	// restart exercises both checkpoint resume and fresh re-owed runs.
	waitCond(t, 60*time.Second, "a running job past block 0", func() bool {
		for _, st := range d1.Jobs() {
			if st.State == StateRunning && st.Block >= 1 && st.Block < st.Blocks {
				return true
			}
		}
		return false
	})
	if err := d1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var interrupted int
	for _, st := range d1.Jobs() {
		switch st.State {
		case StateInterrupted:
			interrupted++
		case StateDone, StateQueued, StateRunning:
		default:
			t.Fatalf("job %d state %q after drain", st.ID, st.State)
		}
	}
	if interrupted == 0 {
		t.Fatal("drain interrupted no job — the test caught nothing")
	}

	d2 := newTestDaemon(t, dir, nil)
	defer d2.Close()
	if got := d2.Metrics().Counters["server.jobs.resumed"]; got != int64(interrupted) {
		t.Fatalf("restart resumed %d jobs, drain interrupted %d", got, interrupted)
	}
	hashes := waitAllDone(t, d2, ids)
	for i, id := range ids {
		if hashes[id] != want[i] {
			t.Fatalf("job %d hash %s after drain+restart, clean run %s", id, hashes[id], want[i])
		}
	}
}

// TestDrainPersistsQueueAcrossRestart drains a daemon whose queue is
// still full (worker held by a long job) and asserts every queued job
// survives the restart and completes.
func TestDrainPersistsQueueAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d1 := newTestDaemon(t, dir, func(c *Config) { c.Workers = 1 })
	// A medium job: heavy enough to be running when the drain lands,
	// light enough to finish promptly after the restart (the suite
	// also runs under -race).
	long, err := d1.Submit(drainSpec("alice", 21))
	if err != nil {
		t.Fatal(err)
	}
	queued := submitAll(t, d1, []*JobSpec{testSpec("bob", 22), testSpec("bob", 23)})
	waitCond(t, 30*time.Second, "long job running", func() bool {
		st, _ := d1.Job(long)
		return st.State == StateRunning
	})
	if err := d1.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, id := range queued {
		st, _ := d1.Job(id)
		if st.State != StateInterrupted {
			t.Fatalf("queued job %d state %q after drain, want interrupted", id, st.State)
		}
	}

	d2 := newTestDaemon(t, dir, nil)
	defer d2.Close()
	waitAllDone(t, d2, append([]uint64{long}, queued...))
}

// TestDrainIdempotentAndSubmitRejected asserts double drains agree and
// submits during a drain fail typed.
func TestDrainIdempotentAndSubmitRejected(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	if err := d.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if _, err := d.Submit(testSpec("alice", 31)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
}
