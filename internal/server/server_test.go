package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	nbody "repro"
)

// testSpec is the standard small job of the daemon tests: a 48-particle
// blob on a 2×1 grid, 8 steps → 4 PFASST blocks, well under a second.
func testSpec(tenant string, seed int64) *JobSpec {
	spec := &JobSpec{
		Tenant:     tenant,
		System:     SystemSpec{Kind: "blob", N: 48, Seed: seed, Sigma: 0.2},
		T0:         0,
		T1:         0.25,
		Steps:      8,
		PT:         2,
		PS:         1,
		MaxRetries: -1,
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return spec
}

// slowSpec is a job heavy enough to still be running while the test
// pokes at the daemon.
func slowSpec(tenant string, seed int64) *JobSpec {
	spec := testSpec(tenant, seed)
	spec.System.N = 800
	spec.Steps = 16
	return spec
}

var (
	cleanHashMu sync.Mutex
	cleanHashes = map[string]uint64{}
)

// cleanHash runs the spec's solve uninterrupted (outside the daemon)
// and fingerprints the final state — the bitwise reference every
// chaos and drain test compares against. Cached per canonical spec.
func cleanHash(t *testing.T, spec *JobSpec) uint64 {
	t.Helper()
	key := string(spec.Canonical())
	cleanHashMu.Lock()
	h, ok := cleanHashes[key]
	cleanHashMu.Unlock()
	if ok {
		return h
	}
	sys, err := spec.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.SolverConfig(t.TempDir())
	out, _, err := nbody.RunSpaceTime(cfg, sys, spec.T0, spec.T1, spec.Steps)
	if err != nil {
		t.Fatal(err)
	}
	h = stateHash(out)
	cleanHashMu.Lock()
	cleanHashes[key] = h
	cleanHashMu.Unlock()
	return h
}

func newTestDaemon(t *testing.T, dir string, mutate func(*Config)) *Daemon {
	t.Helper()
	cfg := Config{Dir: dir, Workers: 2, QueueDepth: 16}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// corruptFileMiddle flips one byte in the middle of a file.
func corruptFileMiddle(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonRunsJobBitwise(t *testing.T) {
	spec := testSpec("alice", 1)
	d := newTestDaemon(t, t.TempDir(), nil)
	defer d.Close()
	id, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job state %q (err %q), want done", st.State, st.Error)
	}
	if want := fmt.Sprintf("%016x", cleanHash(t, spec)); st.Hash != want {
		t.Fatalf("daemon hash %s, clean run hash %s", st.Hash, want)
	}
	snap := d.Metrics()
	if snap.Counters["server.jobs.submitted"] != 1 || snap.Counters["server.jobs.completed"] != 1 {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if snap.Counters["server.tenant.alice.completed"] != 1 {
		t.Fatalf("tenant counters %+v", snap.Counters)
	}
}

func TestHTTPSubmitStatusResultMetrics(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var acc struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var status JobStatus
	waitCond(t, 60*time.Second, "job done over HTTP", func() bool {
		r, err := http.Get(fmt.Sprintf("%s/jobs/%d", srv.URL, acc.ID))
		if err != nil {
			return false
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return false
		}
		if err := json.NewDecoder(r.Body).Decode(&status); err != nil {
			return false
		}
		return status.State == StateDone || status.State == StateFailed
	})
	if status.State != StateDone {
		t.Fatalf("job state %q (err %q)", status.State, status.Error)
	}

	r, err := http.Get(fmt.Sprintf("%s/jobs/%d/result", srv.URL, acc.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK || r.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("result status %d type %q", r.StatusCode, r.Header.Get("Content-Type"))
	}
	if got := r.Header.Get("X-Nbody-State-Hash"); got != status.Hash {
		t.Fatalf("result hash header %q, status hash %q", got, status.Hash)
	}

	m, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(m.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.jobs.completed"] < 1 {
		t.Fatalf("metrics counters %+v", snap.Counters)
	}

	s, err := http.Get(srv.URL + "/metrics/stream?n=2&interval_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Body.Close()
	var lines int
	dec := json.NewDecoder(s.Body)
	for dec.More() {
		var one map[string]any
		if err := dec.Decode(&one); err != nil {
			t.Fatal(err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("stream returned %d snapshots, want 2", lines)
	}
}

func TestHTTPBadSpecAndUnknownJob(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"tenant":"UPPER"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d, want 400", resp.StatusCode)
	}
	var he httpError
	if err := json.NewDecoder(resp.Body).Decode(&he); err != nil || !strings.Contains(he.Error, "bad job spec") {
		t.Fatalf("error body %+v (%v)", he, err)
	}

	r, err := http.Get(srv.URL + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", r.StatusCode)
	}
}

func TestHTTPDrainRejectsWith503(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain status %d, want 202", resp.StatusCode)
	}
	waitCond(t, 10*time.Second, "healthz to report draining", func() bool {
		h, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			return false
		}
		defer h.Body.Close()
		return h.StatusCode == http.StatusServiceUnavailable
	})
	r, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || r.Header.Get("Retry-After") == "" {
		t.Fatalf("submit during drain: status %d, Retry-After %q", r.StatusCode, r.Header.Get("Retry-After"))
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Workers = 1; c.QueueDepth = 4 })
	defer d.Close()
	running, err := d.Submit(slowSpec("alice", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 30*time.Second, "first job running", func() bool {
		st, _ := d.Job(running)
		return st.State == StateRunning
	})
	queued, err := d.Submit(testSpec("alice", 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Job(queued)
	if st.State != StateCanceled || !strings.Contains(st.Error, "job canceled") {
		t.Fatalf("queued cancel: state %q err %q", st.State, st.Error)
	}
	if err := d.Cancel(running); err != nil {
		t.Fatal(err)
	}
	st, err = d.WaitJob(running, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || !strings.Contains(st.Error, "job canceled") {
		t.Fatalf("running cancel: state %q err %q", st.State, st.Error)
	}
	if err := d.Cancel(12345); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown cancel: %v", err)
	}
}

func TestJobDeadlineTyped(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	defer d.Close()
	spec := slowSpec("alice", 4)
	spec.DeadlineMS = 30
	id, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("deadline job: state %q err %q", st.State, st.Error)
	}
}

func TestCorruptJournalRefusesStart(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, dir, nil)
	id, err := d.Submit(testSpec("alice", 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WaitJob(id, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Damage the journal body; a restart must refuse, typed.
	corruptFileMiddle(t, dir+"/journal.nblj")
	if _, err := New(Config{Dir: dir}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("restart on corrupt journal: %v, want ErrJournalCorrupt", err)
	}
}
