package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// The NBLJ job journal is the daemon's crash-safe source of truth: an
// append-only, per-record-checksummed log of every job lifecycle
// transition. A restart replays it to rebuild the job table — jobs
// with no terminal record are re-enqueued and resume from their block
// checkpoints. Records are fsynced before the transition they describe
// takes effect (write-ahead), so any kill point leaves either a fully
// framed record or a torn tail.
//
// File layout:
//
//	"NBLJ" | version u32 | record*
//
// Record framing (all integers little-endian):
//
//	dataLen u32 | kind u8 | job u64 | data [dataLen] | sum u64
//
// where sum is FNV-1a over the preceding record bytes. A record that
// stops at EOF mid-frame is a torn tail (the crash interrupted an
// append): OpenJournal truncates it and continues. Any other framing
// or checksum damage is corruption: the journal is refused with a
// typed error, never silently restarted.
const (
	journalMagic   = "NBLJ"
	journalVersion = 1
	maxRecordData  = 1 << 20
	recordOverhead = 4 + 1 + 8 + 8 // frame bytes around data
)

// RecordKind discriminates journal records.
type RecordKind uint8

// Journal record kinds. Submit carries the canonical spec JSON; Start
// carries the attempt number (u64); Done carries the result state
// hash (u64); Fail, Cancel and Shed carry a human-readable reason.
const (
	RecSubmit RecordKind = 1
	RecStart  RecordKind = 2
	RecDone   RecordKind = 3
	RecFail   RecordKind = 4
	RecCancel RecordKind = 5
	RecShed   RecordKind = 6
)

// Record is one journal entry.
type Record struct {
	Kind RecordKind
	Job  uint64
	Data []byte
}

// ErrJournalCorrupt is the sentinel of journal damage that is NOT a
// torn tail: checksum mismatch, bad magic, implausible framing, or an
// unreplayable record body. A corrupt journal refuses to open — the
// operator must intervene; the daemon never silently drops committed
// history.
var ErrJournalCorrupt = errors.New("server: journal corrupt")

// ErrJournalTorn is the sentinel of a torn tail: the file ends in the
// middle of a record frame, the signature of a crash mid-append.
// OpenJournal handles it internally (truncate and continue); ReplayJournal
// surfaces it for callers that must distinguish.
var ErrJournalTorn = errors.New("server: journal torn tail")

func fnv64(parts ...[]byte) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for _, b := range p {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	return h
}

// EncodeRecord frames one record, checksum included.
func EncodeRecord(rec Record) []byte {
	buf := make([]byte, recordOverhead+len(rec.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(rec.Data)))
	buf[4] = byte(rec.Kind)
	binary.LittleEndian.PutUint64(buf[5:13], rec.Job)
	copy(buf[13:], rec.Data)
	sum := fnv64(buf[:13+len(rec.Data)])
	binary.LittleEndian.PutUint64(buf[13+len(rec.Data):], sum)
	return buf
}

// journalHeader returns the 8-byte file header.
func journalHeader() []byte {
	head := make([]byte, 8)
	copy(head, journalMagic)
	binary.LittleEndian.PutUint32(head[4:], journalVersion)
	return head
}

// replay parses the byte image of a journal. It returns the decoded
// records and the offset of the last fully framed record's end. A torn
// tail yields ErrJournalTorn (records before it are still returned);
// other damage yields ErrJournalCorrupt.
func replay(data []byte) (recs []Record, goodOff int64, err error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("%w: short header (%d bytes)", ErrJournalCorrupt, len(data))
	}
	if string(data[:4]) != journalMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrJournalCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != journalVersion {
		return nil, 0, fmt.Errorf("%w: version %d, want %d", ErrJournalCorrupt, v, journalVersion)
	}
	off := int64(8)
	rest := data[8:]
	for len(rest) > 0 {
		if len(rest) < 13 {
			return recs, off, fmt.Errorf("%w: %d trailing bytes at offset %d", ErrJournalTorn, len(rest), off)
		}
		dataLen := binary.LittleEndian.Uint32(rest[0:4])
		if dataLen > maxRecordData {
			return recs, off, fmt.Errorf("%w: record at offset %d claims %d data bytes (max %d)",
				ErrJournalCorrupt, off, dataLen, maxRecordData)
		}
		total := recordOverhead + int(dataLen)
		if len(rest) < total {
			return recs, off, fmt.Errorf("%w: record at offset %d truncated (%d of %d bytes)",
				ErrJournalTorn, off, len(rest), total)
		}
		body := rest[:13+int(dataLen)]
		want := binary.LittleEndian.Uint64(rest[13+int(dataLen) : total])
		if got := fnv64(body); got != want {
			return recs, off, fmt.Errorf("%w: record at offset %d checksum mismatch (file %016x, computed %016x)",
				ErrJournalCorrupt, off, want, got)
		}
		kind := RecordKind(rest[4])
		if kind < RecSubmit || kind > RecShed {
			return recs, off, fmt.Errorf("%w: record at offset %d has unknown kind %d", ErrJournalCorrupt, off, kind)
		}
		rec := Record{Kind: kind, Job: binary.LittleEndian.Uint64(rest[5:13])}
		if dataLen > 0 {
			rec.Data = append([]byte(nil), rest[13:13+int(dataLen)]...)
		}
		recs = append(recs, rec)
		off += int64(total)
		rest = rest[total:]
	}
	return recs, off, nil
}

// ReplayJournal decodes a full journal image. Valid journals
// round-trip byte-identically: journalHeader() plus the concatenated
// EncodeRecord of the returned records reproduces the input exactly
// (the fuzz harness asserts this).
func ReplayJournal(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrJournalCorrupt, err)
	}
	recs, _, rerr := replay(data)
	return recs, rerr
}

// Journal is an open append-only job journal. Append is
// concurrency-safe and fsyncs each record before returning — the
// write-ahead guarantee the restart path depends on.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (or creates) the journal at path, replaying its
// records. A torn tail — the signature of a crash mid-append — is
// truncated away and the journal continues; any other damage returns
// a wrapped ErrJournalCorrupt and the journal stays closed.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: read journal: %w", err)
	}
	if len(data) == 0 {
		if _, err := f.Write(journalHeader()); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: write journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: sync journal header: %w", err)
		}
		return &Journal{f: f}, nil, nil
	}
	recs, goodOff, rerr := replay(data)
	switch {
	case rerr == nil:
	case errors.Is(rerr, ErrJournalTorn):
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: truncate torn journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: sync truncated journal: %w", err)
		}
	default:
		f.Close()
		return nil, nil, rerr
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: seek journal end: %w", err)
	}
	return &Journal{f: f}, recs, nil
}

// Append frames, writes and fsyncs one record.
func (j *Journal) Append(rec Record) error {
	if len(rec.Data) > maxRecordData {
		return fmt.Errorf("server: journal record data %d bytes exceeds %d", len(rec.Data), maxRecordData)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	if _, err := j.f.Write(EncodeRecord(rec)); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: journal sync: %w", err)
	}
	return nil
}

// Close closes the journal file. Safe to call more than once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// reencode rebuilds the byte image of a journal from its records —
// the round-trip half of the fuzz invariant.
func reencode(recs []Record) []byte {
	var buf bytes.Buffer
	buf.Write(journalHeader())
	for _, rec := range recs {
		buf.Write(EncodeRecord(rec))
	}
	return buf.Bytes()
}
