package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	nbody "repro"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/pfasst"
)

// Job outcome sentinels. Every terminal failure the daemon produces
// wraps exactly one of these — "fails typed" is the chaos suite's
// acceptance bar.
var (
	// ErrJobDeadline marks a job that exceeded its total wall-time
	// budget (across all attempts). The run stops at the next block
	// boundary; committed state remains on disk.
	ErrJobDeadline = errors.New("server: job deadline exceeded")
	// ErrRetriesExhausted marks a job whose retryable failures
	// outlived its retry budget.
	ErrRetriesExhausted = errors.New("server: retry budget exhausted")
	// ErrCheckpointCorrupt marks a job whose resume checkpoint failed
	// its checksum: the daemon refuses to silently restart from
	// nothing and fails the job typed instead.
	ErrCheckpointCorrupt = errors.New("server: checkpoint corrupt")
	// ErrJobCanceled marks a job canceled by the client (or the chaos
	// plan's simulated client).
	ErrJobCanceled = errors.New("server: job canceled")
	// ErrKilledDuringDrain is the cancel cause of the chaos plan's
	// simulated SIGKILL partway through a drain.
	ErrKilledDuringDrain = errors.New("server: killed during drain")
	// ErrUnknownJob rejects lookups of job IDs the daemon has never
	// journaled.
	ErrUnknownJob = errors.New("server: unknown job")
)

// errChaosCancel is the cancel cause of a chaos-plan mid-job cancel;
// it wraps ErrJobCanceled so classification matches a real client.
var errChaosCancel = fmt.Errorf("%w: chaos plan", ErrJobCanceled)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states. Queued and Running are live; Done, Failed,
// Canceled and Shed are terminal and journaled; Interrupted is the
// drain state — NOT terminal and deliberately NOT journaled, so a
// restart replays the job as owed and resumes it from its checkpoint.
const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCanceled    JobState = "canceled"
	StateShed        JobState = "shed"
	StateInterrupted JobState = "interrupted"
)

// JobStatus is the wire snapshot of one job.
type JobStatus struct {
	ID      uint64   `json:"id"`
	Tenant  string   `json:"tenant"`
	State   JobState `json:"state"`
	Attempt int      `json:"attempt"`
	Block   int      `json:"block"`
	Blocks  int      `json:"blocks"`
	Error   string   `json:"error,omitempty"`
	Hash    string   `json:"hash,omitempty"`
}

// job is the daemon's in-memory record of one submitted solve.
type job struct {
	seq  uint64
	spec *JobSpec

	mu       sync.Mutex
	state    JobState
	attempt  int
	block    int
	err      error
	hash     uint64
	cancel   context.CancelCauseFunc
	finished bool
	done     chan struct{}
}

func newJob(seq uint64, spec *JobSpec) *job {
	return &job{seq: seq, spec: spec, state: StateQueued, done: make(chan struct{})}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.seq,
		Tenant:  j.spec.Tenant,
		State:   j.state,
		Attempt: j.attempt,
		Block:   j.block,
		Blocks:  j.spec.Blocks(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone {
		st.Hash = fmt.Sprintf("%016x", j.hash)
	}
	return st
}

// setBlock records block progress (called from the solver's OnBlock
// hook).
func (j *job) setBlock(b int) {
	j.mu.Lock()
	j.block = b
	j.mu.Unlock()
}

// setCancel installs (or clears) the attempt's cancel function so a
// client cancel can reach a running solve.
func (j *job) setCancel(c context.CancelCauseFunc) {
	j.mu.Lock()
	j.cancel = c
	j.mu.Unlock()
}

// finish moves the job to a final (or interrupted) state and wakes
// waiters, once.
func (j *job) finish(state JobState, err error, hash uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	j.state = state
	j.err = err
	j.hash = hash
	j.cancel = nil
	close(j.done)
}

// beginAttempt transitions to running for the given attempt. It
// reports false when the job was already finished (canceled while
// queued, shed) — the runner must then drop it.
func (j *job) beginAttempt(attempt int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return false
	}
	j.state = StateRunning
	j.attempt = attempt
	return true
}

// jobDir is the per-job state directory (checkpoints + result) under
// the daemon's state root.
func (d *Daemon) jobDir(seq uint64) string {
	return filepath.Join(d.cfg.Dir, "jobs", fmt.Sprintf("job%08d", seq))
}

// stateHash is the FNV-1a fingerprint of a system's flat ODE state
// (positions, circulation vectors, σ): two runs are bitwise identical
// exactly when their hashes match.
func stateHash(sys *nbody.System) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(math.Float64bits(sys.Sigma))
	for _, v := range sys.PackNew() {
		mix(math.Float64bits(v))
	}
	return h
}

// backoffDelay is the bounded geometric retry backoff: base·2^attempt,
// capped at one second.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < time.Second; i++ {
		d *= 2
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// sleepCtx sleeps for d unless ctx is canceled first; it reports
// whether the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// corruptCheckpoint flips one byte in the middle of the job's block
// checkpoint (the NBLV state at PS = 1, the NBLM manifest at PS > 1) —
// the chaos plan's bit-rot injection. Returns false when there is no
// checkpoint to damage yet.
func corruptCheckpoint(ckptDir string, ps int) bool {
	name := "pfasst.nblv"
	if ps > 1 {
		name = "grid.nblm"
	}
	path := filepath.Join(ckptDir, name)
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return false
	}
	data[len(data)/2] ^= 0x40
	return os.WriteFile(path, data, 0o644) == nil
}

// runJob executes one job to a terminal (or interrupted) state: the
// retry loop around RunSpaceTimeCtx, with the chaos plan's crash and
// cancel injections wired into the block hook and the write-ahead
// journal recording every transition.
func (d *Daemon) runJob(j *job) {
	spec := j.spec
	blocks := spec.Blocks()
	sys, err := spec.BuildSystem()
	if err != nil {
		d.finalize(j, StateFailed, err, 0)
		return
	}
	var deadline time.Time
	if dl := spec.Deadline(d.cfg.DefaultDeadline); dl > 0 {
		deadline = time.Now().Add(dl)
	}
	budget := spec.RetryBudget(d.cfg.MaxRetries)
	ckptDir := filepath.Join(d.jobDir(j.seq), "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		d.finalize(j, StateFailed, fmt.Errorf("server: job %d state dir: %w", j.seq, err), 0)
		return
	}

	for attempt := 0; ; attempt++ {
		if !j.beginAttempt(attempt) {
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			d.finalize(j, StateFailed, fmt.Errorf("server: job %d before attempt %d: %w", j.seq, attempt, ErrJobDeadline), 0)
			return
		}
		var att [8]byte
		binary.LittleEndian.PutUint64(att[:], uint64(attempt))
		if err := d.journal.Append(Record{Kind: RecStart, Job: j.seq, Data: att[:]}); err != nil {
			d.finalize(j, StateFailed, err, 0)
			return
		}

		ctx, cancel := context.WithCancelCause(d.rootCtx)
		var dcancel context.CancelFunc = func() {}
		if !deadline.IsZero() {
			ctx, dcancel = context.WithDeadlineCause(ctx, deadline, ErrJobDeadline)
		}
		j.setCancel(cancel)

		cfg := spec.SolverConfig(ckptDir)
		crashBlock, crash := d.cfg.Chaos.CrashAt(j.seq, attempt, blocks)
		cancelBlock, chaosCancel := d.cfg.Chaos.CancelAt(j.seq, blocks)
		cfg.OnBlock = func(b int) {
			j.setBlock(b)
			if crash && b == crashBlock {
				cancel(fault.ErrWorkerCrash)
			}
			if chaosCancel && b == cancelBlock {
				cancel(errChaosCancel)
			}
		}

		out, _, rerr := nbody.RunSpaceTimeCtx(ctx, cfg, sys, spec.T0, spec.T1, spec.Steps)
		j.setCancel(nil)
		cause := context.Cause(ctx)
		dcancel()
		cancel(nil)

		if rerr == nil {
			hash := stateHash(out)
			if err := checkpoint.Save(filepath.Join(d.jobDir(j.seq), "result.nbck"), out); err != nil {
				d.finalize(j, StateFailed, fmt.Errorf("server: job %d result: %w", j.seq, err), 0)
				return
			}
			d.finalize(j, StateDone, nil, hash)
			return
		}

		switch {
		case errors.Is(cause, ErrDraining) || errors.Is(cause, ErrKilledDuringDrain):
			// Interrupted, not failed: no terminal journal record, so
			// the restart replays the job and resumes its checkpoint.
			j.finish(StateInterrupted, cause, 0)
			return
		case errors.Is(cause, ErrJobDeadline):
			d.finalize(j, StateFailed, fmt.Errorf("server: job %d attempt %d: %w", j.seq, attempt, ErrJobDeadline), 0)
			return
		case errors.Is(cause, ErrJobCanceled):
			d.finalize(j, StateCanceled, fmt.Errorf("server: job %d: %w", j.seq, cause), 0)
			return
		case errors.Is(rerr, checkpoint.ErrCorrupt):
			d.finalize(j, StateFailed, fmt.Errorf("server: job %d attempt %d: %w: %w", j.seq, attempt, ErrCheckpointCorrupt, rerr), 0)
			return
		case errors.Is(cause, fault.ErrWorkerCrash) || errors.Is(rerr, pfasst.ErrBlockAbort):
			if attempt >= budget {
				d.finalize(j, StateFailed, fmt.Errorf("server: job %d after %d attempts: %w: %w", j.seq, attempt+1, ErrRetriesExhausted, rerr), 0)
				return
			}
			d.tel.Counter("server.jobs.retried").Inc()
			if !sleepCtx(d.rootCtx, backoffDelay(d.cfg.RetryBackoff, attempt)) {
				j.finish(StateInterrupted, context.Cause(d.rootCtx), 0)
				return
			}
			if d.cfg.Chaos.CorruptCheckpoint(j.seq, attempt+1) {
				corruptCheckpoint(ckptDir, spec.PS)
			}
			continue
		default:
			d.finalize(j, StateFailed, fmt.Errorf("server: job %d attempt %d: %w", j.seq, attempt, rerr), 0)
			return
		}
	}
}

// finalize journals a terminal transition and moves the job there.
// Interrupted jobs never come through here — they are deliberately
// unjournaled so the restart owes them.
func (d *Daemon) finalize(j *job, state JobState, jerr error, hash uint64) {
	rec := Record{Job: j.seq}
	switch state {
	case StateDone:
		rec.Kind = RecDone
		var h [8]byte
		binary.LittleEndian.PutUint64(h[:], hash)
		rec.Data = h[:]
		d.tel.Counter("server.jobs.completed").Inc()
		d.tel.Counter(fmt.Sprintf("server.tenant.%s.completed", j.spec.Tenant)).Inc()
	case StateFailed:
		rec.Kind = RecFail
		rec.Data = []byte(jerr.Error())
		d.tel.Counter("server.jobs.failed").Inc()
		d.tel.Counter(fmt.Sprintf("server.tenant.%s.failed", j.spec.Tenant)).Inc()
	case StateCanceled:
		rec.Kind = RecCancel
		rec.Data = []byte(jerr.Error())
		d.tel.Counter("server.jobs.canceled").Inc()
	case StateShed:
		rec.Kind = RecShed
		rec.Data = []byte(jerr.Error())
		d.tel.Counter("server.jobs.shed").Inc()
	default:
		j.finish(state, jerr, hash)
		return
	}
	if err := d.journal.Append(rec); err != nil && jerr == nil {
		jerr = err
	}
	j.finish(state, jerr, hash)
}
