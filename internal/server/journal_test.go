package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Kind: RecSubmit, Job: 1, Data: []byte(`{"tenant":"alice"}`)},
		{Kind: RecStart, Job: 1, Data: []byte{0, 0, 0, 0, 0, 0, 0, 0}},
		{Kind: RecDone, Job: 1, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: RecSubmit, Job: 2, Data: []byte(`{"tenant":"bob"}`)},
		{Kind: RecCancel, Job: 2, Data: []byte("client asked")},
	}
}

func writeTestJournal(t *testing.T, recs []Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.nblj")
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalRoundTrip(t *testing.T) {
	want := testRecords()
	path := writeTestJournal(t, want)

	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Job != want[i].Job || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// Byte-identical re-encode: the fuzz invariant, checked directly.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reencode(got), data) {
		t.Fatal("reencode(replay(journal)) differs from the file bytes")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	want := testRecords()
	path := writeTestJournal(t, want)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record frame at the tail.
	torn := append(append([]byte(nil), good...), EncodeRecord(Record{Kind: RecFail, Job: 3, Data: []byte("half")})[:7]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j, got, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must open: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	// The journal must keep appending after truncation.
	if err := j.Append(Record{Kind: RecFail, Job: 3, Data: []byte("after")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, got2, err := OpenJournal(path); err != nil || len(got2) != len(want)+1 {
		t.Fatalf("after truncate+append: %d records, err %v", len(got2), err)
	}
}

func TestJournalCorruptRefused(t *testing.T) {
	path := writeTestJournal(t, testRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the SECOND record's body: damage that is not
	// a torn tail must refuse to open, never silently truncate.
	data[8+recordOverhead+len(testRecords()[0].Data)+6] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("corrupt journal: got %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.nblj")
	if err := os.WriteFile(path, []byte("NOPE\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalOversizedRecordRefused(t *testing.T) {
	j := &Journal{}
	if err := j.Append(Record{Kind: RecFail, Job: 1, Data: make([]byte, maxRecordData+1)}); err == nil {
		t.Fatal("oversized record accepted")
	}
}
