package server

import (
	"bytes"
	"errors"
	"testing"
)

func validSpecJSON() []byte {
	return []byte(`{
		"tenant": "alice",
		"system": {"kind": "blob", "n": 48, "seed": 7, "sigma": 0.2},
		"t0": 0, "t1": 0.25, "steps": 8, "pt": 2, "ps": 1
	}`)
}

func TestParseJobSpecValid(t *testing.T) {
	spec, err := ParseJobSpec(validSpecJSON())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tenant != "alice" || spec.Blocks() != 4 {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.MaxRetries != -1 {
		t.Fatalf("omitted max_retries = %d, want -1 (inherit)", spec.MaxRetries)
	}
	sys, err := spec.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 48 {
		t.Fatalf("built %d particles, want 48", sys.N())
	}
	cfg := spec.SolverConfig(t.TempDir())
	if !cfg.Resilience.Enabled || !cfg.Resilience.Resume || cfg.Resilience.CheckpointDir == "" {
		t.Fatalf("solver config lacks forced resilience: %+v", cfg.Resilience)
	}
}

func TestParseJobSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"tenant":"a","bogus":1,"system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}`,
		"empty tenant":      `{"tenant":"","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}`,
		"uppercase tenant":  `{"tenant":"Alice","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}`,
		"unknown kind":      `{"tenant":"a","system":{"kind":"galaxy","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}`,
		"blob no sigma":     `{"tenant":"a","system":{"kind":"blob","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}`,
		"zero particles":    `{"tenant":"a","system":{"kind":"vortex","n":0},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}`,
		"too many ranks":    `{"tenant":"a","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":100,"pt":10,"ps":10}`,
		"steps not mult pt": `{"tenant":"a","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":5,"pt":2,"ps":1}`,
		"t1 below t0":       `{"tenant":"a","system":{"kind":"vortex","n":10},"t0":1,"t1":0,"steps":4,"pt":2,"ps":1}`,
		"bad fault plan":    `{"tenant":"a","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1,"fault_plan":"explode=9"}`,
		"bad retries":       `{"tenant":"a","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1,"max_retries":99}`,
		"trailing data":     `{"tenant":"a","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":1}{}`,
		"not json":          `hello`,
	}
	for name, body := range cases {
		if _, err := ParseJobSpec([]byte(body)); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", name, err)
		}
	}
}

func TestSpecCanonicalRoundTrip(t *testing.T) {
	spec, err := ParseJobSpec(validSpecJSON())
	if err != nil {
		t.Fatal(err)
	}
	canon := spec.Canonical()
	again, err := ParseJobSpec(canon)
	if err != nil {
		t.Fatalf("canonical form rejected: %v", err)
	}
	if !bytes.Equal(canon, again.Canonical()) {
		t.Fatal("canonical encoding not a fixed point")
	}
	if *again != *spec {
		t.Fatalf("canonical round trip: %+v != %+v", again, spec)
	}
}

func TestSpecDeadlineAndRetryDefaults(t *testing.T) {
	spec := &JobSpec{MaxRetries: -1}
	if got := spec.RetryBudget(3); got != 3 {
		t.Fatalf("inherited budget %d, want 3", got)
	}
	spec.MaxRetries = 0
	if got := spec.RetryBudget(3); got != 0 {
		t.Fatalf("explicit zero budget %d, want 0", got)
	}
	if spec.Deadline(0) != 0 {
		t.Fatal("unbounded deadline not zero")
	}
	spec.DeadlineMS = 250
	if got := spec.Deadline(0); got.Milliseconds() != 250 {
		t.Fatalf("deadline %v, want 250ms", got)
	}
}
