package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// maxSpecBytes bounds a submitted job spec body.
const maxSpecBytes = 1 << 20

// httpError is the JSON error envelope of every non-2xx response.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection is the only sink left; an encode failure here has
	// no better channel than the already-started response.
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, httpError{Error: err.Error()})
}

// submitSeq numbers submissions for the chaos plan's slow-client
// verdicts (the job ID is not known until admission).
var submitSeq atomic.Uint64

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs             submit a JobSpec         202 | 400 | 429 | 503
//	GET    /jobs             list all jobs            200
//	GET    /jobs/{id}        one job's status         200 | 404
//	DELETE /jobs/{id}        cancel a job             202 | 404
//	GET    /jobs/{id}/result completed result (NBCK)  200 | 404 | 409
//	GET    /metrics          telemetry snapshot       200
//	GET    /metrics/stream   chunked NDJSON snapshots 200
//	POST   /drain            begin graceful drain     202
//	GET    /healthz          liveness                 200 | 503
//
// Backpressure rejections (429 quota/full, 503 draining) carry a
// Retry-After header.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", d.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", d.handleResult)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Metrics())
	})
	mux.HandleFunc("GET /metrics/stream", d.handleMetricsStream)
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		go func() {
			// The drain may be the chaos plan's simulated kill; the
			// restart path, not this response, owns that outcome.
			_ = d.Drain()
		}()
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if d.Draining() {
			writeErr(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if delay, slow := d.cfg.Chaos.SlowSubmit(submitSeq.Add(1)); slow {
		// The slow-client attack: stall between accepting the request
		// and reading its body, holding the handler goroutine open.
		time.Sleep(delay)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%w: %w", ErrBadSpec, err))
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := d.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": StateQueued})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrQuota):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

func (d *Daemon) jobID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: bad id %q", ErrUnknownJob, r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	id, ok := d.jobID(w, r)
	if !ok {
		return
	}
	st, err := d.Job(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := d.jobID(w, r)
	if !ok {
		return
	}
	if err := d.Cancel(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id})
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	id, ok := d.jobID(w, r)
	if !ok {
		return
	}
	st, err := d.Job(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if st.State != StateDone {
		writeErr(w, http.StatusConflict, fmt.Errorf("server: job %d state %q, result requires %q", id, st.State, StateDone))
		return
	}
	data, err := os.ReadFile(d.ResultPath(id))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("server: job %d result: %w", id, err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Nbody-State-Hash", st.Hash)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleMetricsStream streams telemetry snapshots as newline-delimited
// JSON, one per interval, flushed after each line — the live per-job /
// per-tenant telemetry feed. Query parameters: n (snapshot count,
// default 10, max 10000) and interval_ms (default 500).
func (d *Daemon) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	n := 10
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > 10000 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad n %q", s))
			return
		}
		n = v
	}
	interval := 500 * time.Millisecond
	if s := r.URL.Query().Get("interval_ms"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > 60000 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad interval_ms %q", s))
			return
		}
		interval = time.Duration(v) * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(d.Metrics()); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if i == n-1 {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(interval):
		}
	}
}
