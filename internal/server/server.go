// Package server is the solver-as-a-service layer: a crash-safe,
// drain-safe, multi-tenant job daemon around the space-time solver.
//
// Jobs arrive as strict JSON specs (JobSpec), pass admission control
// (bounded queue depth, per-tenant queued quotas and running caps),
// and execute on a shared bounded worker pool (internal/sched.Pool).
// Every lifecycle transition is write-ahead journaled to an
// append-only, per-record-checksummed NBLJ log, and every run
// checkpoints each committed PFASST block — so the daemon can be
// killed at any instant and a restart replays the journal, re-owes
// every job without a terminal record, and resumes each one from its
// block checkpoint bitwise-identically to an uninterrupted run
// (DESIGN.md §16).
//
// Failure policy: retryable failures (resilient-loop Agree aborts,
// injected worker crashes) retry with bounded geometric backoff up to
// the job's budget; deadline overruns, client cancels and corrupt
// checkpoints fail typed (ErrJobDeadline, ErrJobCanceled,
// ErrCheckpointCorrupt) — the daemon never silently restarts a job
// whose resume state failed its checksum. Under load the queue
// refuses to grow (ErrQueueFull / ErrQuota) or, when shedding is
// enabled, evicts the oldest queued job (ErrShed). A drain stops
// admission, interrupts queued and running jobs at their next block
// boundary, and exits with state on disk; fault.ServerPlan injects
// server-level chaos (slow clients, mid-job cancels, worker crashes,
// checkpoint bit-rot, kill-during-drain) deterministically from a
// seed.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Config parameterizes a Daemon. The zero value of any field selects
// a sensible default (see New).
type Config struct {
	// Dir is the daemon's state root: the NBLJ journal plus one
	// directory per job (block checkpoints, result). Required.
	Dir string
	// Workers bounds concurrently running jobs (default 2). Each job
	// may itself spin up PT·PS rank goroutines.
	Workers int
	// QueueDepth bounds the admission queue (default 16): a full
	// queue rejects (429) rather than grows.
	QueueDepth int
	// TenantMaxQueued caps one tenant's queued jobs (default:
	// QueueDepth), TenantMaxRunning caps its running jobs (default:
	// Workers).
	TenantMaxQueued  int
	TenantMaxRunning int
	// ShedOldest switches full-queue behavior from reject-new to
	// evict-oldest (graceful degradation).
	ShedOldest bool
	// DefaultDeadline bounds jobs that do not set deadline_ms
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// MaxRetries is the default retry budget for jobs that do not set
	// max_retries (default 2).
	MaxRetries int
	// RetryBackoff is the base of the geometric retry backoff
	// (default 25ms, capped at 1s).
	RetryBackoff time.Duration
	// Chaos, when non-nil, injects the server-level chaos plan.
	Chaos *fault.ServerPlan
}

// Daemon is the job server. Construct with New, submit with Submit
// (or the HTTP handler), stop with Drain.
type Daemon struct {
	cfg     Config
	tel     *telemetry.Registry
	journal *Journal
	pool    *sched.Pool
	q       *admitQueue

	rootCtx    context.Context
	rootCancel context.CancelCauseFunc

	mu       sync.Mutex
	jobs     map[uint64]*job
	order    []uint64
	nextSeq  uint64
	draining bool
	drained  chan struct{}

	dispatchDone chan struct{}
	drainOnce    sync.Once
	drainErr     error
}

// New opens (or creates) the state directory, replays the journal,
// re-enqueues every job without a terminal record, and starts the
// worker pool. A corrupt journal (or a journaled spec that no longer
// parses) returns a typed error and no daemon — never a silent fresh
// start.
func New(cfg Config) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.TenantMaxQueued < 1 {
		cfg.TenantMaxQueued = cfg.QueueDepth
	}
	if cfg.TenantMaxRunning < 1 {
		cfg.TenantMaxRunning = cfg.Workers
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	journal, recs, err := OpenJournal(filepath.Join(cfg.Dir, "journal.nblj"))
	if err != nil {
		return nil, err
	}
	rootCtx, rootCancel := context.WithCancelCause(context.Background())
	d := &Daemon{
		cfg:          cfg,
		tel:          telemetry.New(),
		journal:      journal,
		pool:         sched.NewPool(cfg.Workers),
		q:            newAdmitQueue(cfg.QueueDepth, cfg.TenantMaxQueued, cfg.TenantMaxRunning),
		rootCtx:      rootCtx,
		rootCancel:   rootCancel,
		jobs:         make(map[uint64]*job),
		drained:      make(chan struct{}),
		dispatchDone: make(chan struct{}),
	}
	if err := d.replay(recs); err != nil {
		journal.Close()
		d.pool.Close()
		rootCancel(nil)
		return nil, err
	}
	go d.dispatch()
	return d, nil
}

// replay rebuilds the job table from journal records and re-enqueues
// every job the journal still owes (submitted or started but with no
// terminal record), in submission order.
func (d *Daemon) replay(recs []Record) error {
	terminal := make(map[uint64]bool)
	for _, rec := range recs {
		switch rec.Kind {
		case RecSubmit:
			spec, err := ParseJobSpec(rec.Data)
			if err != nil {
				return fmt.Errorf("%w: job %d submit record: %w", ErrJournalCorrupt, rec.Job, err)
			}
			j := newJob(rec.Job, spec)
			d.jobs[rec.Job] = j
			d.order = append(d.order, rec.Job)
			if rec.Job >= d.nextSeq {
				d.nextSeq = rec.Job + 1
			}
		case RecStart:
			j := d.jobs[rec.Job]
			if j == nil || len(rec.Data) != 8 {
				return fmt.Errorf("%w: job %d start record without submit", ErrJournalCorrupt, rec.Job)
			}
			j.attempt = int(binary.LittleEndian.Uint64(rec.Data))
		case RecDone:
			j := d.jobs[rec.Job]
			if j == nil || len(rec.Data) != 8 {
				return fmt.Errorf("%w: job %d done record without submit", ErrJournalCorrupt, rec.Job)
			}
			j.finish(StateDone, nil, binary.LittleEndian.Uint64(rec.Data))
			terminal[rec.Job] = true
		case RecFail:
			j := d.jobs[rec.Job]
			if j == nil {
				return fmt.Errorf("%w: job %d fail record without submit", ErrJournalCorrupt, rec.Job)
			}
			j.finish(StateFailed, fmt.Errorf("server: journaled failure: %s", rec.Data), 0)
			terminal[rec.Job] = true
		case RecCancel:
			j := d.jobs[rec.Job]
			if j == nil {
				return fmt.Errorf("%w: job %d cancel record without submit", ErrJournalCorrupt, rec.Job)
			}
			j.finish(StateCanceled, fmt.Errorf("server: journaled cancel: %s", rec.Data), 0)
			terminal[rec.Job] = true
		case RecShed:
			j := d.jobs[rec.Job]
			if j == nil {
				return fmt.Errorf("%w: job %d shed record without submit", ErrJournalCorrupt, rec.Job)
			}
			j.finish(StateShed, fmt.Errorf("server: journaled shed: %s", rec.Data), 0)
			terminal[rec.Job] = true
		}
	}
	for _, seq := range d.order {
		if terminal[seq] {
			continue
		}
		j := d.jobs[seq]
		j.attempt = 0
		d.tel.Counter("server.jobs.resumed").Inc()
		d.q.requeue(j)
	}
	return nil
}

// dispatch moves eligible queued jobs onto the worker pool until the
// queue closes.
func (d *Daemon) dispatch() {
	defer close(d.dispatchDone)
	for {
		j := d.q.pop()
		if j == nil {
			return
		}
		accepted := d.pool.Submit(func() {
			d.runJob(j)
			d.q.release(j.spec.Tenant)
			d.tel.Gauge("server.jobs.running").Set(float64(d.pool.Running()))
		})
		d.tel.Gauge("server.queue.depth").Set(float64(d.q.lenQueued()))
		d.tel.Gauge("server.jobs.running").Set(float64(d.pool.Running()))
		if !accepted {
			d.q.release(j.spec.Tenant)
			j.finish(StateInterrupted, ErrDraining, 0)
			return
		}
	}
}

// admit assigns the next sequence number under the daemon lock,
// rejecting when the daemon is draining. The critical section sits
// behind defer so a panic anywhere inside it cannot leak the mutex
// (locksafe's admission-path rule).
func (d *Daemon) admit() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return 0, ErrDraining
	}
	seq := d.nextSeq
	d.nextSeq++
	return seq, nil
}

// Submit admits a validated spec: journal first (write-ahead), then
// queue. Returns the assigned job ID. Rejections are typed —
// ErrDraining, ErrQuota, ErrQueueFull — and counted.
func (d *Daemon) Submit(spec *JobSpec) (uint64, error) {
	seq, err := d.admit()
	if err != nil {
		d.tel.Counter("server.rejected.draining").Inc()
		return 0, err
	}

	j := newJob(seq, spec)
	if err := d.journal.Append(Record{Kind: RecSubmit, Job: seq, Data: spec.Canonical()}); err != nil {
		return 0, err
	}
	shed, err := d.q.push(j, d.cfg.ShedOldest)
	if err != nil {
		// The submit record is already journaled; record the rejection
		// so a restart does not resurrect the job.
		reject := Record{Kind: RecCancel, Job: seq, Data: []byte(err.Error())}
		if jerr := d.journal.Append(reject); jerr != nil {
			return 0, jerr
		}
		switch {
		case errors.Is(err, ErrQuota):
			d.tel.Counter("server.rejected.quota").Inc()
		case errors.Is(err, ErrQueueFull):
			d.tel.Counter("server.rejected.queue_full").Inc()
		default:
			d.tel.Counter("server.rejected.draining").Inc()
		}
		return 0, err
	}
	d.mu.Lock()
	d.jobs[seq] = j
	d.order = append(d.order, seq)
	d.mu.Unlock()
	if shed != nil {
		d.finalize(shed, StateShed, fmt.Errorf("server: job %d: %w (evicted for job %d)", shed.seq, ErrShed, seq), 0)
	}
	d.tel.Counter("server.jobs.submitted").Inc()
	d.tel.Counter(fmt.Sprintf("server.tenant.%s.submitted", spec.Tenant)).Inc()
	d.tel.Gauge("server.queue.depth").Set(float64(d.q.lenQueued()))
	return seq, nil
}

// Cancel cancels a job: a queued job finalizes immediately, a running
// one stops at its next block boundary. Canceling a finished job is a
// no-op; an unknown ID returns ErrUnknownJob.
func (d *Daemon) Cancel(id uint64) error {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return ErrUnknownJob
	}
	if d.q.remove(j) {
		d.finalize(j, StateCanceled, fmt.Errorf("server: job %d: %w while queued", id, ErrJobCanceled), 0)
		d.tel.Gauge("server.queue.depth").Set(float64(d.q.lenQueued()))
		return nil
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(fmt.Errorf("server: job %d: %w", id, ErrJobCanceled))
	}
	return nil
}

// Job returns a job's status snapshot.
func (d *Daemon) Job(id uint64) (JobStatus, error) {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Jobs returns every known job's status, in submission order.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	order := append([]uint64(nil), d.order...)
	jobs := make([]*job, 0, len(order))
	for _, seq := range order {
		jobs = append(jobs, d.jobs[seq])
	}
	d.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// ResultPath returns the path of a completed job's result checkpoint.
func (d *Daemon) ResultPath(id uint64) string {
	return filepath.Join(d.jobDir(id), "result.nbck")
}

// WaitJob blocks until the job reaches a final or interrupted state
// (or the timeout elapses) and returns its status.
func (d *Daemon) WaitJob(id uint64, timeout time.Duration) (JobStatus, error) {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return JobStatus{}, ErrUnknownJob
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-j.done:
		return j.status(), nil
	case <-t.C:
		return j.status(), fmt.Errorf("server: job %d: wait timed out after %s", id, timeout)
	}
}

// Metrics returns a snapshot of the daemon's telemetry.
func (d *Daemon) Metrics() telemetry.Snapshot { return d.tel.Snapshot() }

// Draining reports whether a drain has begun.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Drain gracefully shuts the daemon down: stop admission, mark queued
// jobs interrupted, cancel running jobs (they stop at their next block
// boundary, checkpoint intact), wait for the pool, close the journal.
// Interrupted jobs keep no terminal record — a restart on the same
// state directory owes and resumes them. When the chaos plan calls
// for a kill-during-drain, running jobs are canceled with
// ErrKilledDuringDrain and Drain returns that error; on-disk state is
// exactly as crash-consistent as a real SIGKILL would leave it.
// Idempotent: later calls return the first outcome.
func (d *Daemon) Drain() error {
	d.drainOnce.Do(func() {
		d.mu.Lock()
		d.draining = true
		d.mu.Unlock()

		killed := d.cfg.Chaos.KillDuringDrain()
		cause := error(ErrDraining)
		if killed {
			cause = ErrKilledDuringDrain
		}

		d.q.close()
		// Canceling the root context reaches every attempt context
		// (and retry backoff sleep) at once; it must precede the wait
		// on the dispatcher, which may be blocked handing a job to a
		// pool whose workers only free once running jobs stop.
		d.rootCancel(cause)
		<-d.dispatchDone
		for _, j := range d.q.drainQueued() {
			j.finish(StateInterrupted, cause, 0)
		}
		d.pool.Close()
		d.journal.Close()
		close(d.drained)
		if killed {
			d.drainErr = ErrKilledDuringDrain
		}
	})
	<-d.drained
	return d.drainErr
}

// Close is Drain for defer chains: it swallows the chaos plan's
// simulated kill (tests assert on Drain's return instead).
func (d *Daemon) Close() {
	if err := d.Drain(); err != nil && !errors.Is(err, ErrKilledDuringDrain) {
		// Drain only returns the typed kill sentinel today; anything
		// else would be a programming error worth surfacing loudly.
		panic(err)
	}
}
