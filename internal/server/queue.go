package server

import (
	"errors"
	"sync"
)

// Admission sentinels. All are typed so clients and tests can
// distinguish backpressure (retry later) from policy (don't retry).
var (
	// ErrQueueFull rejects a submit when the bounded queue is at
	// capacity (and shedding is off): the queue refuses to grow rather
	// than buffer without bound. HTTP maps it to 429.
	ErrQueueFull = errors.New("server: queue full")
	// ErrQuota rejects a submit that would exceed the tenant's queued
	// quota. HTTP maps it to 429.
	ErrQuota = errors.New("server: tenant quota exceeded")
	// ErrDraining rejects a submit while the daemon is draining. HTTP
	// maps it to 503.
	ErrDraining = errors.New("server: draining")
	// ErrShed marks a queued job evicted by graceful degradation: the
	// queue was full and the daemon shed the oldest queued job to
	// admit the new one.
	ErrShed = errors.New("server: job shed under load")
)

// admitQueue is the daemon's bounded FIFO admission queue. One mutex
// owns the queue AND the per-tenant queued/running accounting, so
// admission (depth + quota), eligibility (per-tenant running cap) and
// shedding are each a single atomic decision.
type admitQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	items  []*job
	depth  int
	closed bool

	tenantQueued  map[string]int
	tenantRunning map[string]int
	maxQueued     int // per-tenant queued cap
	maxRunning    int // per-tenant running cap
}

func newAdmitQueue(depth, maxQueued, maxRunning int) *admitQueue {
	q := &admitQueue{
		depth:         depth,
		maxQueued:     maxQueued,
		maxRunning:    maxRunning,
		tenantQueued:  make(map[string]int),
		tenantRunning: make(map[string]int),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits j. On a full queue it either rejects with ErrQueueFull
// or — when shedOldest is set — evicts and returns the oldest queued
// job (the caller journals and finalizes the shed job). A tenant over
// its queued quota is rejected with ErrQuota regardless of shedding:
// quota pressure is the tenant's own doing, not global load.
func (q *admitQueue) push(j *job, shedOldest bool) (shed *job, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrDraining
	}
	t := j.spec.Tenant
	if q.tenantQueued[t] >= q.maxQueued {
		return nil, ErrQuota
	}
	if len(q.items) >= q.depth {
		if !shedOldest {
			return nil, ErrQueueFull
		}
		shed = q.items[0]
		q.items = q.items[1:]
		q.tenantQueued[shed.spec.Tenant]--
	}
	q.items = append(q.items, j)
	q.tenantQueued[t]++
	q.cond.Broadcast()
	return shed, nil
}

// requeue re-admits a replayed job on restart, bypassing depth and
// quota checks: jobs already journaled as submitted are owed
// execution regardless of current pressure.
func (q *admitQueue) requeue(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, j)
	q.tenantQueued[j.spec.Tenant]++
	q.cond.Broadcast()
}

// pop blocks until a job whose tenant has running headroom is
// available, removes it, charges the tenant's running count, and
// returns it. It returns nil once the queue is closed — remaining
// items stay queued for the drain path to collect.
func (q *admitQueue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil
		}
		for i, j := range q.items {
			t := j.spec.Tenant
			if q.tenantRunning[t] < q.maxRunning {
				q.items = append(q.items[:i], q.items[i+1:]...)
				q.tenantQueued[t]--
				q.tenantRunning[t]++
				return j
			}
		}
		q.cond.Wait()
	}
}

// release returns a tenant's running slot and wakes pop.
func (q *admitQueue) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tenantRunning[tenant]--
	q.cond.Broadcast()
}

// remove takes a specific job out of the queue (client cancel while
// queued). It reports whether the job was found.
func (q *admitQueue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.tenantQueued[j.spec.Tenant]--
			return true
		}
	}
	return false
}

// drainQueued empties the queue and returns the removed jobs, in
// order.
func (q *admitQueue) drainQueued() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	for _, j := range out {
		q.tenantQueued[j.spec.Tenant]--
	}
	return out
}

// lenQueued reports the current queue depth.
func (q *admitQueue) lenQueued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops admission and unblocks every pop.
func (q *admitQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
