package server

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzJobSpec asserts the admission parser never panics, rejects with
// the typed sentinel, and accepts only specs whose canonical form is a
// fixed point.
func FuzzJobSpec(f *testing.F) {
	f.Add(validSpecJSON())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tenant":"a","system":{"kind":"vortex","n":10},"t0":0,"t1":1,"steps":4,"pt":2,"ps":2}`))
	f.Add([]byte(`{"tenant":"a","system":{"kind":"coulomb","n":10,"seed":3},"t0":0,"t1":1,"steps":4,"pt":4,"ps":1,"max_retries":2,"deadline_ms":100}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"tenant":"a"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJobSpec(data)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec fails re-validation: %v", verr)
		}
		canon := spec.Canonical()
		again, err := ParseJobSpec(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !bytes.Equal(canon, again.Canonical()) {
			t.Fatalf("canonical encoding not a fixed point: %q vs %q", canon, again.Canonical())
		}
	})
}

// FuzzJournal asserts journal replay never panics, classifies every
// failure as torn or corrupt, and round-trips valid journals
// byte-identically.
func FuzzJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add(journalHeader())
	f.Add(reencode(testRecords()))
	f.Add(reencode(testRecords())[:20])
	f.Add([]byte("NBLJ\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReplayJournal(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) && !errors.Is(err, ErrJournalTorn) {
				t.Fatalf("untyped journal failure: %v", err)
			}
			return
		}
		if !bytes.Equal(reencode(recs), data) {
			t.Fatalf("valid journal does not round-trip byte-identically (%d records, %d bytes)", len(recs), len(data))
		}
	})
}
