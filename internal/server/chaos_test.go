package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

func chaosPlan(t *testing.T, spec string) *fault.ServerPlan {
	t.Helper()
	p, err := fault.ParseServer(spec, 1009)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestChaosWorkerCrashRetriesBitwise: every job's first attempt
// crashes at a hashed block ≥ 1; the retry resumes the block
// checkpoint and must finish bitwise-identical to a clean run.
func TestChaosWorkerCrashRetriesBitwise(t *testing.T) {
	specs := []*JobSpec{testSpec("alice", 41), testSpec("alice", 42), testSpec("bob", 43)}
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Chaos = chaosPlan(t, "crash=1")
	})
	defer d.Close()
	ids := submitAll(t, d, specs)
	hashes := waitAllDone(t, d, ids)
	for i, id := range ids {
		if want := fmt.Sprintf("%016x", cleanHash(t, specs[i])); hashes[id] != want {
			t.Fatalf("job %d hash %s after crash+retry, clean run %s", id, hashes[id], want)
		}
	}
	snap := d.Metrics()
	if snap.Counters["server.jobs.retried"] < int64(len(ids)) {
		t.Fatalf("retried %d, want ≥ %d: %+v", snap.Counters["server.jobs.retried"], len(ids), snap.Counters)
	}
}

// TestChaosMidJobCancelTyped: every job is canceled at a hashed block
// boundary and must land in StateCanceled with the typed sentinel.
func TestChaosMidJobCancelTyped(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Chaos = chaosPlan(t, "cancel=1")
	})
	defer d.Close()
	id, err := d.Submit(testSpec("alice", 44))
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || !strings.Contains(st.Error, "job canceled") {
		t.Fatalf("chaos cancel: state %q err %q", st.State, st.Error)
	}
}

// TestChaosCheckpointCorruptFailsTyped: the first attempt crashes,
// the chaos plan then flips a byte in the block checkpoint, and the
// retry's resume must fail with ErrCheckpointCorrupt — never a silent
// restart from scratch.
func TestChaosCheckpointCorruptFailsTyped(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Chaos = chaosPlan(t, "crash=1,corrupt=1")
	})
	defer d.Close()
	id, err := d.Submit(testSpec("alice", 45))
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "checkpoint corrupt") {
		t.Fatalf("corrupt resume: state %q err %q", st.State, st.Error)
	}
}

// TestChaosRetriesExhaustedTyped: a crash with a zero retry budget
// must fail typed with ErrRetriesExhausted.
func TestChaosRetriesExhaustedTyped(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Chaos = chaosPlan(t, "crash=1")
	})
	defer d.Close()
	spec := testSpec("alice", 46)
	spec.MaxRetries = 0
	id, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.WaitJob(id, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "retry budget exhausted") {
		t.Fatalf("exhausted retries: state %q err %q", st.State, st.Error)
	}
}

// TestChaosKillDuringDrainRestartResumes: the chaos plan aborts the
// drain partway (simulated SIGKILL); a restart on the same directory
// must owe and finish every interrupted job bitwise-identically.
func TestChaosKillDuringDrainRestartResumes(t *testing.T) {
	specs := []*JobSpec{drainSpec("alice", 47), drainSpec("bob", 48)}
	want := make([]string, len(specs))
	for i, spec := range specs {
		want[i] = fmt.Sprintf("%016x", cleanHash(t, spec))
	}
	dir := t.TempDir()
	d1 := newTestDaemon(t, dir, func(c *Config) {
		c.Workers = 1
		c.Chaos = chaosPlan(t, "killdrain=1")
	})
	ids := submitAll(t, d1, specs)
	waitCond(t, 60*time.Second, "a running job past block 0", func() bool {
		for _, st := range d1.Jobs() {
			if st.State == StateRunning && st.Block >= 1 {
				return true
			}
		}
		return false
	})
	if err := d1.Drain(); !errors.Is(err, ErrKilledDuringDrain) {
		t.Fatalf("killed drain returned %v, want ErrKilledDuringDrain", err)
	}

	d2 := newTestDaemon(t, dir, nil)
	defer d2.Close()
	hashes := waitAllDone(t, d2, ids)
	for i, id := range ids {
		if hashes[id] != want[i] {
			t.Fatalf("job %d hash %s after killed drain, clean run %s", id, hashes[id], want[i])
		}
	}
}

// TestChaosSlowClientsServerStaysResponsive: with every submit stalled
// by the slow-client plan, the daemon must still serve status requests
// promptly and finish the work.
func TestChaosSlowClientsServerStaysResponsive(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Chaos = chaosPlan(t, "slow=1:50ms")
	})
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	start := time.Now()
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		bytes.NewReader(testSpec("alice", 49).Canonical()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow submit status %d, want 202", resp.StatusCode)
	}
	var acc struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("slow submit returned in %v, plan demands ≥ 50ms", elapsed)
	}
	// Status lookups are untouched by the submit stall.
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil || h.StatusCode != http.StatusOK {
		t.Fatalf("healthz alongside slow submits: %v status %d", err, h.StatusCode)
	}
	h.Body.Close()
	st, err := d.WaitJob(acc.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job state %q (err %q)", st.State, st.Error)
	}
}
