package core

import (
	"math"
	"testing"

	"repro/internal/direct"
	"repro/internal/kernel"
	"repro/internal/mpi"
	"repro/internal/particle"
	"repro/internal/sdc"
	"repro/internal/tree"
	"repro/internal/vec"
)

// serialReference advances the full system with time-serial SDC and a
// direct O(N²) evaluator — the ground truth for the coupled runs.
func serialReference(full *particle.System, t0, t1 float64, nsteps, sweeps int) *particle.System {
	sys := NewVortexSystem(full, direct.New(kernel.Algebraic6(), kernel.Transpose, 0))
	u := full.PackNew()
	sdc.NewIntegrator(sys, 3, sweeps).Integrate(t0, t1, nsteps, u)
	out := full.Clone()
	out.Unpack(u)
	return out
}

func TestVortexSystemRHSMatchesEvaluator(t *testing.T) {
	full := particle.RandomVortexBlob(30, 0.3, 61)
	ev := direct.New(kernel.Algebraic6(), kernel.Transpose, 0)
	sys := NewVortexSystem(full, ev)
	if sys.Dim() != 180 {
		t.Fatalf("dim %d", sys.Dim())
	}
	if sys.Evaluator() != ev {
		t.Fatal("evaluator accessor broken")
	}
	u := full.PackNew()
	f := make([]float64, len(u))
	sys.F(0, u, f)
	// The first particle's RHS must equal the pairwise sums computed
	// directly from the kernel.
	pw := kernel.Pairwise{Sm: kernel.Algebraic6(), Sigma: full.Sigma}
	var velWant vec.Vec3
	var grad vec.Mat3
	for p := 1; p < full.N(); p++ {
		du, dg := pw.VelocityGrad(full.Particles[0].Pos.Sub(full.Particles[p].Pos), full.Particles[p].Alpha)
		velWant = velWant.Add(du)
		grad = grad.Add(dg)
	}
	strWant := kernel.StretchTranspose(grad, full.Particles[0].Alpha)
	if math.Abs(f[0]-velWant.X) > 1e-13 || math.Abs(f[4]-strWant.Y) > 1e-13 {
		t.Fatalf("RHS mismatch: f[0]=%v want %v; f[4]=%v want %v", f[0], velWant.X, f[4], strWant.Y)
	}
}

func TestSpaceTimeMatchesSerialReference(t *testing.T) {
	full := particle.SphericalVortexSheet(particle.DefaultSheet(96))
	const pt, ps = 2, 2
	t1 := 2.0
	nsteps := 2

	// Ground truth: serial SDC on the collocation solution with a
	// θ=0 tree (≡ direct) evaluator.
	want := serialReference(full, 0, t1, nsteps, 12)

	cfg := Default(pt, ps)
	cfg.ThetaFine = 0 // fine level exact
	cfg.ThetaCoarse = 0.6
	cfg.Iterations = 8 // converge deep
	var got *particle.System
	err := mpi.Run(pt*ps, func(w *mpi.Comm) error {
		res, err := RunSpaceTime(w, cfg, full, 0, t1, nsteps)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			got = res.Local
		}
		w.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 holds spatial block 0.
	n0 := got.N()
	maxErr := 0.0
	for i := 0; i < n0; i++ {
		maxErr = math.Max(maxErr, got.Particles[i].Pos.Sub(want.Particles[i].Pos).Norm())
	}
	if maxErr > 1e-7 {
		t.Fatalf("space-time run differs from serial reference by %g", maxErr)
	}
}

func TestSpaceTimeThetaCoarseningConverges(t *testing.T) {
	// The production configuration (θ 0.3/0.6) must converge: small
	// iteration-to-iteration differences on the last slice.
	full := particle.SphericalVortexSheet(particle.DefaultSheet(128))
	const pt, ps = 2, 2
	cfg := Default(pt, ps)
	cfg.Iterations = 3
	var diff float64
	err := mpi.Run(pt*ps, func(w *mpi.Comm) error {
		res, err := RunSpaceTime(w, cfg, full, 0, 1, 2)
		if err != nil {
			return err
		}
		if res.TimeSlice == pt-1 && res.SpatialIndex == 0 {
			diff = res.PFASST.IterDiffs[0]
		}
		w.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff <= 0 || diff > 1e-3 {
		t.Fatalf("last-slice iteration diff %g out of expected range", diff)
	}
}

func TestSpaceTimeRejectsWrongWorldSize(t *testing.T) {
	full := particle.RandomVortexBlob(16, 0.2, 67)
	cfg := Default(2, 2)
	err := mpi.Run(3, func(w *mpi.Comm) error {
		_, err := RunSpaceTime(w, cfg, full, 0, 1, 2)
		if err == nil {
			t.Error("expected world-size error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSpaceSerialSDCMatchesSerial(t *testing.T) {
	full := particle.SphericalVortexSheet(particle.DefaultSheet(64))
	want := serialReference(full, 0, 1, 2, 4)
	const ps = 2
	results := make([]*particle.System, ps)
	cfg := Default(1, ps)
	cfg.ThetaFine = 0
	err := mpi.Run(ps, func(w *mpi.Comm) error {
		local := blockOf(full, w.Rank(), ps)
		if _, err := RunSpaceSerialSDC(w, cfg, local, 0, 1, 2, 3, 4); err != nil {
			return err
		}
		results[w.Rank()] = local
		w.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := 0
	for r := 0; r < ps; r++ {
		for i := range results[r].Particles {
			d := results[r].Particles[i].Pos.Sub(want.Particles[idx].Pos).Norm()
			if d > 1e-11 {
				t.Fatalf("particle %d differs by %g", idx, d)
			}
			idx++
		}
	}
	if idx != full.N() {
		t.Fatalf("covered %d of %d particles", idx, full.N())
	}
}

func TestRunSpaceSerialSDCValidation(t *testing.T) {
	full := particle.RandomVortexBlob(8, 0.2, 71)
	cfg := Default(1, 1)
	err := mpi.Run(1, func(w *mpi.Comm) error {
		if _, err := RunSpaceSerialSDC(w, cfg, full, 0, 1, 0, 3, 4); err == nil {
			t.Error("expected error for 0 steps")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func blockOf(full *particle.System, rank, size int) *particle.System {
	n := full.N()
	lo, hi := n*rank/size, n*(rank+1)/size
	out := &particle.System{Sigma: full.Sigma, Particles: make([]particle.Particle, hi-lo)}
	copy(out.Particles, full.Particles[lo:hi])
	return out
}

func TestVortexSystemWithTreeEvaluator(t *testing.T) {
	full := particle.SphericalVortexSheet(particle.DefaultSheet(200))
	treeSys := NewVortexSystem(full, tree.NewSolver(kernel.Algebraic6(), kernel.Transpose, 0.3))
	directSys := NewVortexSystem(full, direct.New(kernel.Algebraic6(), kernel.Transpose, 0))
	u := full.PackNew()
	fT := make([]float64, len(u))
	fD := make([]float64, len(u))
	treeSys.F(0, u, fT)
	directSys.F(0, u, fD)
	maxRel := 0.0
	for i := range fT {
		maxRel = math.Max(maxRel, math.Abs(fT[i]-fD[i]))
	}
	scale := 0.0
	for i := range fD {
		scale = math.Max(scale, math.Abs(fD[i]))
	}
	if maxRel/scale > 5e-3 {
		t.Fatalf("tree RHS deviates from direct by %g", maxRel/scale)
	}
}

func TestSpaceTimeWithThreadsAndTolerance(t *testing.T) {
	// Hybrid traversal + adaptive iteration together: the coupled run
	// must still converge to the serial reference.
	full := particle.SphericalVortexSheet(particle.ScaledSheet(96))
	want := serialReference(full, 0, 1, 2, 10)

	cfg := Default(2, 2)
	cfg.ThetaFine = 0
	cfg.Iterations = 10
	cfg.Tol = 1e-9
	cfg.Threads = 3
	var got *particle.System
	var itersRun int
	err := mpi.Run(4, func(w *mpi.Comm) error {
		res, err := RunSpaceTime(w, cfg, full, 0, 1, 2)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			got = res.Local
			itersRun = res.PFASST.IterationsRun[0]
		}
		w.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if itersRun < 1 || itersRun > 10 {
		t.Fatalf("iterations run %d", itersRun)
	}
	maxErr := 0.0
	for i := range got.Particles {
		maxErr = math.Max(maxErr, got.Particles[i].Pos.Sub(want.Particles[i].Pos).Norm())
	}
	if maxErr > 1e-6 {
		t.Fatalf("threads+tol run deviates by %g", maxErr)
	}
}

func TestSpaceTimeLargerGrid(t *testing.T) {
	// A 4×4 = 16-rank space-time grid (PT=4, PS=4) over two blocks:
	// completes, converges, and matches the serial reference within
	// PFASST-iteration accuracy.
	if testing.Short() {
		t.Skip("large grid test")
	}
	full := particle.SphericalVortexSheet(particle.ScaledSheet(256))
	want := serialReference(full, 0, 4, 8, 6)
	cfg := Default(4, 4)
	cfg.ThetaFine = 0
	cfg.Iterations = 5
	results := make([]*particle.System, 4)
	err := mpi.Run(16, func(w *mpi.Comm) error {
		res, err := RunSpaceTime(w, cfg, full, 0, 4, 8)
		if err != nil {
			return err
		}
		if res.TimeSlice == 3 {
			results[res.SpatialIndex] = res.Local
		}
		w.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, maxErr := 0, 0.0
	for r := 0; r < 4; r++ {
		for i := range results[r].Particles {
			maxErr = math.Max(maxErr,
				results[r].Particles[i].Pos.Sub(want.Particles[idx].Pos).Norm())
			idx++
		}
	}
	if idx != full.N() {
		t.Fatalf("covered %d of %d", idx, full.N())
	}
	if maxErr > 1e-5 {
		t.Fatalf("16-rank space-time run deviates by %g", maxErr)
	}
}

func TestSpaceTimeThreeLevelHierarchy(t *testing.T) {
	// A three-level space-time hierarchy (θ 0 / 0.4 / 0.7 on 5/3/2
	// nodes) must converge to the serial reference.
	full := particle.SphericalVortexSheet(particle.ScaledSheet(96))
	cfg := Default(2, 2)
	cfg.Levels = []LevelTheta{
		{Theta: 0, NNodes: 5},
		{Theta: 0.4, NNodes: 3},
		{Theta: 0.7, NNodes: 2},
	}
	cfg.Iterations = 8

	// Serial reference at the finest level's accuracy (θ=0, 5 nodes).
	sys := NewVortexSystem(full, direct.New(kernel.Algebraic6(), kernel.Transpose, 0))
	u := full.PackNew()
	sdc.NewIntegrator(sys, 5, 12).Integrate(0, 1, 2, u)
	want := full.Clone()
	want.Unpack(u)

	var got *particle.System
	err := mpi.Run(4, func(w *mpi.Comm) error {
		res, err := RunSpaceTime(w, cfg, full, 0, 1, 2)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			got = res.Local
		}
		w.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := range got.Particles {
		maxErr = math.Max(maxErr, got.Particles[i].Pos.Sub(want.Particles[i].Pos).Norm())
	}
	if maxErr > 1e-6 {
		t.Fatalf("3-level space-time run deviates by %g", maxErr)
	}
}
