// Package core couples the space-parallel Barnes-Hut tree code
// (package hot, the PEPC analog) with the parallel-in-time integrator
// PFASST — the paper's central contribution.
//
// A space-time run uses PT×PS ranks arranged as in Fig. 2 of the
// paper: the world communicator is split once by time slice (giving PT
// spatial "PEPC" communicators of PS ranks each) and once by
// intra-slice index (giving PS temporal "PFASST" communicators of PT
// ranks each). Every rank is a member of exactly one of each.
//
// Spatial coarsening for the coarse PFASST level is obtained through
// the multipole acceptance criterion: the fine propagator evaluates
// forces with θ_fine (accurate, slow), the coarse propagator with
// θ_coarse > θ_fine (cheap, inexact), exactly as in Section IV-B.
package core

import (
	"context"
	"fmt"

	"repro/internal/field"
	"repro/internal/guard"
	"repro/internal/hot"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/particle"
	"repro/internal/pfasst"
	"repro/internal/sdc"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/vec"
)

// VortexSystem adapts any field.Evaluator (direct solver or serial
// tree) to the ode.System interface for single-process runs: the flat
// state holds positions and circulation vectors (particle.Pack layout)
// and the right-hand side is (u, dα/dt) from the evaluator.
type VortexSystem struct {
	template *particle.System
	eval     field.Evaluator
	work     *particle.System
	vel, str []vec.Vec3
}

// NewVortexSystem returns the ODE view of a particle system under the
// given evaluator. The template's volumes and σ are reused for every
// evaluation; positions and circulations come from the ODE state.
func NewVortexSystem(template *particle.System, eval field.Evaluator) *VortexSystem {
	return &VortexSystem{
		template: template,
		eval:     eval,
		work:     template.Clone(),
		vel:      make([]vec.Vec3, template.N()),
		str:      make([]vec.Vec3, template.N()),
	}
}

// Dim implements ode.System.
func (v *VortexSystem) Dim() int { return v.template.StateLen() }

// F implements ode.System.
func (v *VortexSystem) F(t float64, u, f []float64) {
	v.work.Unpack(u)
	v.eval.Eval(v.work, v.vel, v.str)
	for i := range v.vel {
		o := 6 * i
		f[o+0], f[o+1], f[o+2] = v.vel[i].X, v.vel[i].Y, v.vel[i].Z
		f[o+3], f[o+4], f[o+5] = v.str[i].X, v.str[i].Y, v.str[i].Z
	}
}

// Evaluator returns the wrapped evaluator (for statistics).
func (v *VortexSystem) Evaluator() field.Evaluator { return v.eval }

// DistVortexSystem is the distributed counterpart: the state holds the
// rank's local particles and the right-hand side is computed
// collectively by the parallel tree on the rank's spatial communicator.
type DistVortexSystem struct {
	local    *particle.System
	solver   *hot.Solver
	work     *particle.System
	vel, str []vec.Vec3
	// Evals counts collective force evaluations.
	Evals int64
	// Interactions accumulates this rank's interaction counts.
	Interactions int64

	// telemetry handles (nil = off), set by Instrument.
	telEvals, telInter *telemetry.Counter
}

// NewDistVortexSystem returns the distributed ODE view for the rank's
// local share of the particles.
func NewDistVortexSystem(local *particle.System, solver *hot.Solver) *DistVortexSystem {
	return &DistVortexSystem{
		local:  local,
		solver: solver,
		work:   local.Clone(),
		vel:    make([]vec.Vec3, local.N()),
		str:    make([]vec.Vec3, local.N()),
	}
}

// Instrument routes the system's evaluation counters to the registry
// under the names "core.evals.levelL" / "core.interactions.levelL",
// separating the fine and coarse force-evaluation work per time slice
// (the hot.* counters aggregate over all levels of the rank).
func (d *DistVortexSystem) Instrument(reg *telemetry.Registry, level int) {
	d.telEvals = reg.Counter(fmt.Sprintf("core.evals.level%d", level))
	d.telInter = reg.Counter(fmt.Sprintf("core.interactions.level%d", level))
}

// Dim implements ode.System.
func (d *DistVortexSystem) Dim() int { return d.local.StateLen() }

// F implements ode.System (collective over the spatial communicator).
func (d *DistVortexSystem) F(t float64, u, f []float64) {
	d.work.Unpack(u)
	d.solver.Eval(d.work, d.vel, d.str)
	d.Evals++
	d.Interactions += d.solver.Last.Interactions
	d.telEvals.Inc()
	d.telInter.Add(d.solver.Last.Interactions)
	for i := range d.vel {
		o := 6 * i
		f[o+0], f[o+1], f[o+2] = d.vel[i].X, d.vel[i].Y, d.vel[i].Z
		f[o+3], f[o+4], f[o+5] = d.str[i].X, d.str[i].Y, d.str[i].Z
	}
}

// Config parameterizes a space-time run.
type Config struct {
	// PT and PS are the temporal and spatial rank counts; the world
	// communicator must have exactly PT·PS ranks.
	PT, PS int
	// Sm and Scheme select the smoothing kernel and stretching form.
	Sm     kernel.Smoothing
	Scheme kernel.Scheme
	// ThetaFine and ThetaCoarse are the MAC parameters of the fine and
	// coarse PFASST levels (paper: 0.3 and 0.6).
	ThetaFine, ThetaCoarse float64
	// NodesFine and NodesCoarse are the collocation node counts
	// (paper: 3 and 2).
	NodesFine, NodesCoarse int
	// Levels, when non-empty, overrides the two-level configuration
	// with an arbitrary hierarchy (finest first): each entry gives the
	// MAC parameter and collocation node count of one PFASST level.
	// Node counts must be nested (e.g. 5/3/2).
	Levels []LevelTheta
	// Iterations and CoarseSweeps select PFASST(X, Y, ·).
	Iterations, CoarseSweeps int
	// Tol, when positive, lets PFASST stop iterating early once the
	// global slice-end update falls below it.
	Tol float64
	// LeafCap is the tree bucket size.
	LeafCap int
	// Dipole enables cluster dipole corrections.
	Dipole bool
	// Threads selects the per-rank traversal worker count (the
	// Pthreads analog of PEPC; ≤1 = synchronous).
	Threads int
	// Traversal selects the force-evaluation strategy of every level's
	// tree solver: tree.TraversalList (default) or
	// tree.TraversalRecursive.
	Traversal tree.TraversalMode
	// StealGrain tunes the work-stealing chunk size (leaf groups) of
	// the hybrid list traversal; ≤0 = automatic.
	StealGrain int
	// Layout selects the evaluation storage of every level's tree
	// solver: particle.LayoutSoA (the Default) runs the batched
	// struct-of-arrays kernels, particle.LayoutAoS the reference path.
	// Results are bitwise equal either way (DESIGN.md §14).
	Layout particle.Layout
	// Balance enables cross-rank dynamic load balancing: every force
	// evaluation routes per-particle interaction counts back to the
	// particles' owners, and the next evaluation's sample-sort
	// splitters are placed at equal-work (not equal-count) quantiles —
	// the work-sharing rebalancing of Becciani et al., applied to the
	// Morton-range decomposition between steps. Off by default: the
	// interaction-count history is the only state carried across
	// evaluations, so disabling it keeps redo-after-rollback bitwise
	// reproducible for the guard layer.
	Balance bool
	// Branch selects the branch-node exchange algorithm of every
	// level's tree solver: hot.BranchRing (zero value) or
	// hot.BranchBatched (batched, MAC-pruned, overlapped — DESIGN.md
	// §15). Results are bitwise identical either way.
	Branch hot.BranchMode
	// Model, when non-nil, drives the virtual clocks.
	Model *machine.CostModel
	// Tel, when non-nil, collects this world rank's telemetry (tree
	// phases, message counts, sweep counts, per-level evaluation
	// counters). Each rank needs its own registry; merge the Snapshots
	// afterwards.
	Tel *telemetry.Registry
	// Resilience selects the fault-tolerant execution path
	// (checkpointed blocks, bounded-wait receives, shrink-and-redo
	// recovery). At PS = 1 the loop runs inside PFASST: the time
	// communicator shrinks and the survivors redo the block. At PS > 1
	// the grid-resilient loop in this package takes over: commit/abort
	// is agreed over the full PT×PS world, survivors shrink BOTH
	// communicator families, the committed state is re-decomposed onto
	// the smaller spatial width, and when a whole time slice dies out
	// every live rank falls back to redundant serial SDC (see
	// resilient.go and DESIGN.md §12).
	Resilience pfasst.Resilience
	// Guard configures the silent-data-corruption detectors and the
	// recovery ladder (package guard). When Enabled, every rank gets a
	// private guard wired into its tree builds (ABFT moment checks)
	// and its PFASST time loop (state checksum, block-end monitors).
	// Works at any PS: with PS > 1 the ladder's verdicts are agreed
	// collectively over the spatial communicator and the invariant
	// monitors compare global sums (DESIGN.md §15). Guard composes
	// with Resilience.Enabled at any PS: corruption verdicts and crash
	// verdicts fold into the same per-block agreement, so a bit-flip
	// redo and a concurrent rank crash interleave safely (DESIGN.md
	// §12).
	Guard guard.Policy
	// Ctx enables cooperative cancellation: the block loops poll it at
	// every block boundary (never mid-block) and the run returns an
	// error wrapping pfasst.ErrCanceled, identically on every rank. The
	// decision is collective — rank 0's observation of the Context is
	// broadcast (plain/guarded path) or folded into the block agreement
	// (resilient paths) — so no rank ever aborts asymmetrically out of
	// a deadline-less collective. Nil changes nothing.
	Ctx context.Context
	// OnBlock, when non-nil, is invoked with the index of the block
	// about to run, from exactly one world rank, before the Context is
	// polled: a hook that cancels the Context stops the run at that
	// block boundary deterministically (the server's chaos plan and
	// progress telemetry hang off this).
	OnBlock func(block int)
}

// Default returns the paper's configuration PFASST(2,2,·) with
// θ = 0.3/0.6 on 3/2 Lobatto nodes.
func Default(pt, ps int) Config {
	return Config{
		PT: pt, PS: ps,
		Sm:        kernel.Algebraic6(),
		Scheme:    kernel.Transpose,
		ThetaFine: 0.3, ThetaCoarse: 0.6,
		NodesFine: 3, NodesCoarse: 2,
		Iterations: 2, CoarseSweeps: 2,
		LeafCap: 8,
		Dipole:  true,
		Layout:  particle.LayoutSoA,
	}
}

// LevelTheta describes one level of a custom space-time hierarchy.
type LevelTheta struct {
	Theta  float64
	NNodes int
}

// Result is one world rank's view of a space-time run.
type Result struct {
	// Local holds the rank's local particles advanced to the final
	// time (every time slice ends with the same copy).
	Local *particle.System
	// SpatialIndex identifies which block of the initial particle
	// ordering Local corresponds to (−1 when the rank retired).
	SpatialIndex int
	// SpatialRanks is the spatial width of the FINAL decomposition:
	// cfg.PS normally, smaller after crash recovery shrank the grid.
	// Reassemble the full state from the ranks with Participated set,
	// slicing by SpatialIndex/SpatialRanks.
	SpatialRanks int
	// Participated reports whether Local holds a share of the final
	// state. False only for ranks the grid-resilient path retired after
	// a shrink (their Local is nil).
	Participated bool
	// TimeSlice is this rank's slice index.
	TimeSlice int
	// PFASST carries the per-block residual diagnostics.
	PFASST pfasst.Result
	// FineEvals / CoarseEvals count collective force evaluations of
	// the two levels on this rank.
	FineEvals, CoarseEvals int64
}

// RunSpaceTime advances the full particle system from t0 to t1 in
// nsteps steps using PT×PS-way space-time parallelism. Every world
// rank must call it with identical arguments; the world communicator
// must have PT·PS ranks and nsteps must be a multiple of PT.
func RunSpaceTime(world *mpi.Comm, cfg Config, full *particle.System, t0, t1 float64, nsteps int) (Result, error) {
	if world.Size() != cfg.PT*cfg.PS {
		return Result{}, fmt.Errorf("core: world has %d ranks, config wants PT×PS = %d×%d",
			world.Size(), cfg.PT, cfg.PS)
	}
	if cfg.Resilience.Enabled && cfg.PS > 1 {
		return runGridResilient(world, cfg, full, t0, t1, nsteps)
	}
	slice := world.Rank() / cfg.PS
	spatial := world.Rank() % cfg.PS
	spaceComm := world.Split(slice, spatial)
	timeComm := world.Split(spatial, slice)

	local := hot.BlockPartition(full, spatial, cfg.PS)
	var grd *guard.Guard
	if cfg.Guard.Enabled {
		grd = guard.New(cfg.Guard, world.Rank(), cfg.Tel)
		// With PS > 1 the ladder's redo/rollback/abort verdicts are
		// agreed over the spatial communicator and the invariant
		// monitors see global sums; with PS = 1 AttachSpace is a no-op
		// and the guard behaves exactly as before.
		grd.AttachSpace(spaceComm)
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []LevelTheta{
			{Theta: cfg.ThetaFine, NNodes: cfg.NodesFine},
			{Theta: cfg.ThetaCoarse, NNodes: cfg.NodesCoarse},
		}
	}
	specs := make([]pfasst.LevelSpec, len(levels))
	systems := make([]*DistVortexSystem, len(levels))
	for i, l := range levels {
		hcfg := hot.Config{
			Sm: cfg.Sm, Scheme: cfg.Scheme, Theta: l.Theta,
			LeafCap: cfg.LeafCap, Dipole: cfg.Dipole, Model: cfg.Model, Threads: cfg.Threads,
			Traversal: cfg.Traversal, StealGrain: cfg.StealGrain,
			Layout:          cfg.Layout,
			WeightedBalance: cfg.Balance,
			Branch:          cfg.Branch,
			Tel:             cfg.Tel,
		}
		if grd != nil {
			hcfg.Hook = grd
		}
		solver := hot.New(spaceComm, hcfg)
		systems[i] = NewDistVortexSystem(local, solver)
		systems[i].Instrument(cfg.Tel, i)
		specs[i] = pfasst.LevelSpec{Sys: systems[i], NNodes: l.NNodes}
	}
	fineSys := systems[0]
	coarseSys := systems[len(systems)-1]

	pcfg := pfasst.Config{
		Levels:       specs,
		Iterations:   cfg.Iterations,
		CoarseSweeps: cfg.CoarseSweeps,
		Tol:          cfg.Tol,
		Tel:          cfg.Tel,
		Resilience:   cfg.Resilience,
		Guard:        grd,
		Ctx:          cfg.Ctx,
	}
	if spatial == 0 {
		// The resilient PS=1 loop calls the hook from time rank 0; with
		// one spatial column that is exactly one world rank per block.
		pcfg.OnBlock = cfg.OnBlock
	}
	if cfg.Ctx != nil || cfg.OnBlock != nil {
		pcfg.CancelCheck = cancelCheck(world, cfg.Ctx, cfg.OnBlock)
	}
	u0 := local.PackNew()
	pres, err := pfasst.Run(timeComm, pcfg, t0, t1, nsteps, u0)
	if err != nil {
		return Result{}, err
	}
	out := local.Clone()
	out.Unpack(pres.U)
	return Result{
		Local:        out,
		SpatialIndex: spatial,
		SpatialRanks: cfg.PS,
		Participated: true,
		TimeSlice:    slice,
		PFASST:       pres,
		FineEvals:    fineSys.Evals,
		CoarseEvals:  coarseSys.Evals,
	}, nil
}

// cancelCheck returns the collective block-boundary cancellation
// predicate used by the plain and guarded time loops: world rank 0
// invokes the OnBlock hook, polls the Context, and broadcasts the
// verdict, so every rank of every spatial column aborts the same block
// together (an asymmetric local return would strand peers in
// deadline-less spatial collectives).
func cancelCheck(world *mpi.Comm, ctx context.Context, onBlock func(int)) func(int) error {
	return func(block int) error {
		flag := []byte{0}
		if world.Rank() == 0 {
			if onBlock != nil {
				onBlock(block)
			}
			if ctx != nil && ctx.Err() != nil {
				flag[0] = 1
			}
		}
		if got := world.Bcast(0, flag); len(got) == 1 && got[0] != 0 {
			if err := pfasst.CancelErr(ctx, block); err != nil {
				return err
			}
			return fmt.Errorf("core: block %d: %w: canceled at root", block, pfasst.ErrCanceled)
		}
		return nil
	}
}

// RunSpaceSerialSDC is the purely space-parallel baseline: time-serial
// SDC(sweeps) on the spatial communicator, using the parallel tree
// with θ_fine for every force evaluation. It advances the rank's local
// particles in place and returns the per-step collocation residuals.
func RunSpaceSerialSDC(spaceComm *mpi.Comm, cfg Config, local *particle.System,
	t0, t1 float64, nsteps, nnodes, sweeps int) ([]float64, error) {
	if nsteps < 1 {
		return nil, fmt.Errorf("core: nsteps %d < 1", nsteps)
	}
	solver := hot.New(spaceComm, hot.Config{
		Sm: cfg.Sm, Scheme: cfg.Scheme, Theta: cfg.ThetaFine,
		LeafCap: cfg.LeafCap, Dipole: cfg.Dipole, Model: cfg.Model, Threads: cfg.Threads,
		Traversal: cfg.Traversal, StealGrain: cfg.StealGrain,
		Layout:          cfg.Layout,
		WeightedBalance: cfg.Balance,
		Branch:          cfg.Branch,
		Tel:             cfg.Tel,
	})
	sys := NewDistVortexSystem(local, solver)
	sys.Instrument(cfg.Tel, 0)
	in := sdc.NewIntegrator(sys, nnodes, sweeps)
	u := local.PackNew()
	residuals := make([]float64, 0, nsteps)
	dt := (t1 - t0) / float64(nsteps)
	for n := 0; n < nsteps; n++ {
		residuals = append(residuals, in.StepResidual(t0+float64(n)*dt, dt, u))
	}
	local.Unpack(u)
	return residuals, nil
}
