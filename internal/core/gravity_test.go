package core

import (
	"math"
	"testing"

	"repro/internal/particle"
	"repro/internal/sdc"
	"repro/internal/vec"
)

// twoBody builds an equal-mass binary on a circular orbit: masses 1 at
// ±0.5 on the x-axis, speeds √(1/2)·... with G=1, separation d=1 the
// circular speed of each body is v = √(G·m/(2d)) = √0.5/... derived:
// m v²/r = G m²/d² with r = d/2 ⇒ v = √(G m/(2 d)).
func twoBody() (*particle.System, []vec.Vec3, float64) {
	const G, m, d = 1.0, 1.0, 1.0
	v := math.Sqrt(G * m / (2 * d))
	sys := &particle.System{Sigma: 0.01, Particles: []particle.Particle{
		{Pos: vec.V3(-d/2, 0, 0), Charge: m, Vol: 1},
		{Pos: vec.V3(d/2, 0, 0), Charge: m, Vol: 1},
	}}
	vel := []vec.Vec3{vec.V3(0, -v, 0), vec.V3(0, v, 0)}
	period := 2 * math.Pi * (d / 2) / v
	return sys, vel, period
}

func TestTwoBodyCircularOrbit(t *testing.T) {
	sys, vel, period := twoBody()
	g := NewGravitySystem(sys, 0, 1, 0) // θ=0: exact pairwise gravity
	u := g.PackState(sys, vel)
	sdc.NewIntegrator(g, 3, 4).Integrate(0, period, 64, u)
	out := sys.Clone()
	g.UnpackState(u, out)
	// After one period both bodies return to their starting points.
	for i := range out.Particles {
		d := out.Particles[i].Pos.Sub(sys.Particles[i].Pos).Norm()
		if d > 1e-4 {
			t.Fatalf("body %d displaced by %g after one period", i, d)
		}
	}
}

func TestTwoBodyEnergyConservation(t *testing.T) {
	sys, vel, period := twoBody()
	g := NewGravitySystem(sys, 0, 1, 0)
	energy := func(u []float64) float64 {
		out := sys.Clone()
		v := g.UnpackState(u, out)
		kin := 0.0
		for i, p := range out.Particles {
			kin += 0.5 * p.Charge * v[i].Norm2()
		}
		d := out.Particles[0].Pos.Sub(out.Particles[1].Pos).Norm()
		return kin - 1.0/d
	}
	u := g.PackState(sys, vel)
	e0 := energy(u)
	sdc.NewIntegrator(g, 3, 4).Integrate(0, 2*period, 128, u)
	e1 := energy(u)
	if math.Abs(e1-e0) > 1e-5*math.Abs(e0) {
		t.Fatalf("energy drift %g -> %g", e0, e1)
	}
}

func TestGravityTreeMatchesDirectOrbit(t *testing.T) {
	// A small cluster integrated with θ=0.4 tree gravity stays close to
	// the θ=0 (direct) trajectory over a short horizon.
	cloud := particle.HomogeneousCoulomb(60, 91)
	for i := range cloud.Particles {
		cloud.Particles[i].Charge = 1.0 / 60 // masses
	}
	vel := make([]vec.Vec3, cloud.N())

	run := func(theta float64) *particle.System {
		sys := cloud.Clone()
		g := NewGravitySystem(sys, theta, 1, 0.05)
		u := g.PackState(sys, vel)
		sdc.NewIntegrator(g, 3, 4).Integrate(0, 0.5, 4, u)
		out := sys.Clone()
		g.UnpackState(u, out)
		return out
	}
	exact := run(0)
	approx := run(0.4)
	maxD := 0.0
	for i := range exact.Particles {
		maxD = math.Max(maxD, exact.Particles[i].Pos.Sub(approx.Particles[i].Pos).Norm())
	}
	if maxD > 1e-3 {
		t.Fatalf("tree-gravity trajectory deviates by %g", maxD)
	}
	if maxD == 0 {
		t.Fatal("tree and direct identical — MAC never fired?")
	}
}

func TestGravityStatePackUnpack(t *testing.T) {
	sys, vel, _ := twoBody()
	g := NewGravitySystem(sys, 0.3, 1, 0.01)
	u := g.PackState(sys, vel)
	if len(u) != g.Dim() {
		t.Fatalf("state length %d, want %d", len(u), g.Dim())
	}
	out := sys.Clone()
	gotVel := g.UnpackState(u, out)
	for i := range vel {
		if gotVel[i] != vel[i] || out.Particles[i].Pos != sys.Particles[i].Pos {
			t.Fatal("round trip failed")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.PackState(sys, vel[:1])
}
