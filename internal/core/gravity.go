package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/particle"
	"repro/internal/tree"
	"repro/internal/vec"
)

// GravitySystem is the ODE view of the gravitation discipline — the
// application PEPC began with. The flat state holds positions and
// velocities ([x y z vx vy vz] per particle); the right-hand side is
// (v, a) with accelerations from the Barnes-Hut Coulomb pass using the
// particle Charge attribute as mass and the attractive sign.
type GravitySystem struct {
	template *particle.System
	solver   *tree.Solver
	// G is the gravitational constant; Eps the Plummer softening.
	G, Eps float64

	work *particle.System
	pot  []float64
	acc  []vec.Vec3
}

// NewGravitySystem returns the gravity ODE for the system with the
// given MAC parameter.
func NewGravitySystem(template *particle.System, theta, g, eps float64) *GravitySystem {
	return &GravitySystem{
		template: template,
		solver:   tree.NewSolver(kernel.Algebraic2(), kernel.Transpose, theta),
		G:        g, Eps: eps,
		work: template.Clone(),
		pot:  make([]float64, template.N()),
		acc:  make([]vec.Vec3, template.N()),
	}
}

// Dim implements ode.System: six doubles per particle.
func (g *GravitySystem) Dim() int { return 6 * g.template.N() }

// PackState builds the flat state from positions and velocities.
func (g *GravitySystem) PackState(sys *particle.System, vel []vec.Vec3) []float64 {
	if len(vel) != sys.N() {
		panic(fmt.Sprintf("core: %d velocities for %d particles", len(vel), sys.N()))
	}
	u := make([]float64, 6*sys.N())
	for i, p := range sys.Particles {
		o := 6 * i
		u[o+0], u[o+1], u[o+2] = p.Pos.X, p.Pos.Y, p.Pos.Z
		u[o+3], u[o+4], u[o+5] = vel[i].X, vel[i].Y, vel[i].Z
	}
	return u
}

// UnpackState writes positions into sys and returns the velocities.
func (g *GravitySystem) UnpackState(u []float64, sys *particle.System) []vec.Vec3 {
	if len(u) != 6*sys.N() {
		panic("core: gravity state length mismatch")
	}
	vel := make([]vec.Vec3, sys.N())
	for i := range sys.Particles {
		o := 6 * i
		sys.Particles[i].Pos = vec.V3(u[o+0], u[o+1], u[o+2])
		vel[i] = vec.V3(u[o+3], u[o+4], u[o+5])
	}
	return vel
}

// F implements ode.System.
func (g *GravitySystem) F(t float64, u, f []float64) {
	for i := range g.work.Particles {
		o := 6 * i
		g.work.Particles[i].Pos = vec.V3(u[o+0], u[o+1], u[o+2])
	}
	g.solver.Coulomb(g.work, g.Eps, g.pot, g.acc)
	for i := range g.work.Particles {
		o := 6 * i
		// dx/dt = v
		f[o+0], f[o+1], f[o+2] = u[o+3], u[o+4], u[o+5]
		// dv/dt = −G·E (the Coulomb field of positive masses is
		// repulsive; gravity attracts)
		f[o+3] = -g.G * g.acc[i].X
		f[o+4] = -g.G * g.acc[i].Y
		f[o+5] = -g.G * g.acc[i].Z
	}
}
