package core

// Full-grid fault tolerance (ISSUE 8): crash recovery on the complete
// PT×PS communicator grid. The PS=1 resilient loop lives in
// pfasst.runResilient, where a block abort only ever involves the one
// time communicator. At PS>1 the failure surface is two-dimensional —
// a dead rank breaks its temporal column AND its spatial slice — so
// the recovery protocol moves up to the layer that owns the spatial
// decomposition:
//
//  1. Every block ends in ONE agreement over the original world
//     communicator (retired ranks included), so commit/abort/fatal is
//     decided identically everywhere. Agreement values: 2 commit,
//     1 retryable abort, 0 fatal.
//  2. On abort, survivors agree on the dead set (mpi.AgreeDeadRanks),
//     chain-shrink onto it, and rebuild both communicator families
//     from scratch. The new spatial width is PS' = min over time
//     slices of that slice's live-rank count; each slice's first PS'
//     live ranks are active, the rest retire into a control skeleton
//     that keeps voting (and can be reactivated by a later shrink).
//  3. The committed block-start state is redistributed: every previous
//     holder contributes its column share, the full state is
//     reassembled (falling back to the on-disk grid checkpoint when a
//     whole column died out), and re-partitioned onto PS'. Resume from
//     a checkpoint takes exactly this path, which is why a checkpoint
//     written at one PS restores onto any other.
//  4. When some slice has no survivors at all (PS' = 0), parallel-in-
//     time execution is impossible and every live rank redundantly
//     integrates the full state with serial SDC — deterministic,
//     identical output on every rank, the degraded-completion
//     guarantee of the PS=1 serial tail lifted to the grid.
//
// Wake-up cascade: a rank whose attempt hits a transport failure
// revokes its spatial and temporal communicators, so peers blocked in
// plain collectives (tree builds, guard allreduces — which have no
// deadlines) fail fast and join the agreement instead of waiting for
// the world-level deadlock detector. Guard corruption verdicts do NOT
// revoke: the slice agrees collectively after the time block
// completed, so every rank reaches the world agreement on its own.
//
// The grid path forces single-threaded tree traversals: comm-failure
// panics must only ever unwind rank-main goroutines, and the hybrid
// traversal's service goroutines would turn one into a process crash.
// Traversal results are schedule-invariant, so this changes cost, not
// numerics (DESIGN.md §12).

import (
	"errors"
	"fmt"
	"io/fs"

	"repro/internal/checkpoint"
	"repro/internal/guard"
	"repro/internal/hot"
	"repro/internal/mpi"
	"repro/internal/particle"
	"repro/internal/pfasst"
	"repro/internal/sdc"
)

// ErrStateLost is returned, identically on every live rank, when a
// crash destroys every replica of some spatial column's committed
// state and no restorable grid checkpoint covers it. With PT time
// ranks each column is held PT-fold redundantly, so this requires a
// whole temporal column to die inside one block.
var ErrStateLost = errors.New("core: committed state lost (no surviving replica, no checkpoint)")

// Recovery-phase telemetry of the grid-resilient loop: the timers
// split one recovery round into its phases (the BENCH_PR8 per-phase
// recovery cost columns), the counter tallies rounds.
const (
	PhaseRecoveryAgree        = "core.recovery.agree"
	PhaseRecoveryRebuild      = "core.recovery.rebuild"
	PhaseRecoveryRedistribute = "core.recovery.redistribute"
	PhaseRecoveryCheckpoint   = "core.recovery.checkpoint"
	CounterRecoveryRounds     = "core.recovery.rounds"
	CounterRecoveryRetired    = "core.recovery.retired_ranks"
)

// levelPlan expands the two-level default into the explicit hierarchy.
func levelPlan(cfg Config) []LevelTheta {
	if len(cfg.Levels) > 0 {
		return cfg.Levels
	}
	return []LevelTheta{
		{Theta: cfg.ThetaFine, NNodes: cfg.NodesFine},
		{Theta: cfg.ThetaCoarse, NNodes: cfg.NodesCoarse},
	}
}

// gridHotConfig is the tree-solver configuration of the grid-resilient
// path: identical to the plain path except that traversals are forced
// synchronous (see the package comment above).
func gridHotConfig(cfg Config, theta float64, grd *guard.Guard) hot.Config {
	hcfg := hot.Config{
		Sm: cfg.Sm, Scheme: cfg.Scheme, Theta: theta,
		LeafCap: cfg.LeafCap, Dipole: cfg.Dipole, Model: cfg.Model, Threads: 1,
		Traversal: cfg.Traversal, StealGrain: cfg.StealGrain,
		Layout:          cfg.Layout,
		WeightedBalance: cfg.Balance,
		Branch:          cfg.Branch,
		Tel:             cfg.Tel,
	}
	if grd != nil {
		hcfg.Hook = grd
	}
	return hcfg
}

// runGridResilient is the fault-tolerant space-time loop for PS > 1.
// Every world rank calls it with identical arguments.
func runGridResilient(world *mpi.Comm, cfg Config, full *particle.System, t0, t1 float64, nsteps int) (Result, error) {
	rz := cfg.Resilience
	ps0, pt := cfg.PS, cfg.PT
	slice := world.Rank() / ps0 // fixed for the rank's lifetime
	dt := (t1 - t0) / float64(nsteps)
	n := full.N()
	maxRetries := rz.MaxBlockRetries
	if maxRetries <= 0 {
		maxRetries = pfasst.DefaultMaxBlockRetries
	}
	fallbackSweeps := rz.FallbackSweeps
	if fallbackSweeps <= 0 {
		fallbackSweeps = pfasst.DefaultFallbackSweeps
	}

	tAgree := cfg.Tel.Timer(PhaseRecoveryAgree)
	tRebuild := cfg.Tel.Timer(PhaseRecoveryRebuild)
	tRedist := cfg.Tel.Timer(PhaseRecoveryRedistribute)
	tCkpt := cfg.Tel.Timer(PhaseRecoveryCheckpoint)
	cRounds := cfg.Tel.Counter(CounterRecoveryRounds)
	cRetired := cfg.Tel.Counter(CounterRecoveryRetired)

	var grd *guard.Guard
	if cfg.Guard.Enabled {
		grd = guard.New(cfg.Guard, world.Rank(), cfg.Tel)
	}
	levels := levelPlan(cfg)

	// Run state, identical on every live rank wherever it is not
	// explicitly per-rank (u, col, active).
	var (
		pres      pfasst.Result // accumulates across solver rebuilds
		u         []float64     // active: local share of committed block-start state
		stepsDone int
		block     int
		gen       int   // block-attempt generation (message tag namespace)
		rgen      int   // recovery generation (communicator labels)
		oldPS     int   // partition width of the committed state; 0 = undistributed
		psNew     int   // current active spatial width
		retries   int   // consecutive retries without a new death
		lastAbort error // cause of the most recent aborted attempt (per-rank)
		gpending  int   // guard corruptions pending a committed redo
		prevDead  = -1  // size of the last agreed dead set; -1 = none yet
		col       = -1  // my spatial column, -1 = retired
		active    bool
		// fullU holds the full committed state whenever this rank does
		// not hold a distributed share of it: before the first recovery
		// round distributes anything (oldPS == 0), and on retired ranks
		// or in degraded-all mode afterwards.
		fullU []float64
	)
	surv := world
	var spaceComm, timeComm *mpi.Comm
	var solver *pfasst.GridSolver
	var local *particle.System
	var fineSys, coarseSys *DistVortexSystem
	var fineEvals, coarseEvals int64

	// Resume shares the shrink path: load the full state, let the first
	// recovery round partition it onto whatever PS this run has. Every
	// rank reads and validates its own copy of the checkpoint, so the
	// accept-or-reject decision must be agreed world-wide before anyone
	// returns: a rank-local read or validation failure that bailed out
	// directly would strand the surviving ranks in the block-loop
	// collectives below (the PR 8 deadlock class; nbodylint's
	// collective rule flags the bare early returns).
	if rz.Resume && rz.CheckpointDir != "" {
		gl, err := checkpoint.LoadGrid(rz.CheckpointDir)
		var rerr error
		loaded := false
		switch {
		case err == nil:
			switch {
			case len(gl.U) != 6*n:
				rerr = fmt.Errorf("core: resume: checkpoint dim %d does not match problem dim %d", len(gl.U), 6*n)
			case gl.StepsDone > nsteps:
				rerr = fmt.Errorf("core: checkpoint has %d steps done, run wants %d", gl.StepsDone, nsteps)
			default:
				if v := grd.ValidateCheckpoint(gl.U, gl.Diag, gl.Block); v != nil {
					rerr = fmt.Errorf("core: resume rejected: %w", v)
				} else {
					loaded = true
				}
			}
		case errors.Is(err, fs.ErrNotExist):
			// Missing checkpoint: start from the beginning.
		default:
			rerr = fmt.Errorf("core: resume: %w", err)
		}
		av := int64(1)
		if rerr != nil {
			av = 0
		}
		if world.Agree(av) == 0 {
			if rerr == nil {
				rerr = fmt.Errorf("core: resume rejected on a peer rank")
			}
			return Result{}, rerr
		}
		if loaded {
			stepsDone, block = gl.StepsDone, gl.Block
			fullU = gl.U
		}
	}
	if fullU == nil {
		fullU = full.PackNew()
	}

	// bankEvals folds the current systems' force-evaluation counters
	// into the run totals before they are replaced.
	bankEvals := func() {
		if fineSys != nil {
			fineEvals += fineSys.Evals
			coarseEvals += coarseSys.Evals
		}
		fineSys, coarseSys = nil, nil
	}

	// recoverGrid is one full recovery round: agree on the dead, chain-
	// shrink, rebuild communicators and solvers, redistribute state.
	// It loops internally until a round completes without a transport
	// failure, and returns only errors that are identical on every live
	// rank (lost state, corrupt checkpoint, exhausted retry budget).
	recoverGrid := func() error {
		for {
			cRounds.Inc()
			spanA := tAgree.Start()
			dead := world.AgreeDeadRanks()
			spanA.Stop()

			// Retry accounting is a pure function of agreed data, so
			// every rank takes the give-up branch together (no extra
			// agreement needed). The first round and rounds that found a
			// new death are free, mirroring the PS=1 rule that shrinks
			// do not consume the retry budget.
			if prevDead >= 0 {
				if len(dead) > prevDead {
					retries = 0
				} else {
					retries++
					if retries > maxRetries {
						// Wrap this rank's last abort cause so callers
						// keep a typed handle on WHY the budget ran out
						// (e.g. a recurring guard violation).
						if lastAbort != nil {
							return fmt.Errorf("core: block %d failed %d attempts without a new rank death: %w", block, retries, lastAbort)
						}
						return fmt.Errorf("core: block %d failed %d attempts without a new rank death (aborts raised by peers)", block, retries)
					}
				}
			}
			prevDead = len(dead)

			var lost error
			err := func() (rerr error) {
				defer func() {
					if p := recover(); p != nil {
						cerr, ok := mpi.AsCommFailure(p)
						if !ok {
							panic(p)
						}
						rerr = cerr
					}
				}()

				spanB := tRebuild.Start()
				rgen++
				surv = surv.ShrinkTo(dead)
				surv.SetLabel(fmt.Sprintf("surv[gen=%d]", rgen))
				surv.FailFast(true)

				// Active set: a pure function of the agreed dead list.
				deadSet := make(map[int]bool, len(dead))
				for _, wr := range dead {
					deadSet[wr] = true
				}
				liveOf := make([][]int, pt)
				for wr := 0; wr < pt*ps0; wr++ {
					if !deadSet[wr] {
						s := wr / ps0
						liveOf[s] = append(liveOf[s], wr)
					}
				}
				psNew = len(liveOf[0])
				for _, lv := range liveOf[1:] {
					if len(lv) < psNew {
						psNew = len(lv)
					}
				}
				myIdx := -1
				for i, wr := range liveOf[slice] {
					if wr == world.Rank() {
						myIdx = i
					}
				}
				wasActive, oldCol := active, col
				active = psNew > 0 && myIdx < psNew
				col = -1
				if active {
					col = myIdx
				} else {
					cRetired.Inc()
				}

				// Rebuild both communicator families. Retired ranks pass
				// color −1 and get comms they never use; what matters is
				// that every surviving rank participates in both splits.
				colorS, colorT := -1, -1
				if active {
					colorS, colorT = slice, col
				}
				spaceComm = surv.Split(colorS, myIdx)
				timeComm = surv.Split(colorT, slice)
				if active {
					spaceComm.SetLabel(fmt.Sprintf("space[slice=%d,gen=%d]", slice, rgen))
					spaceComm.FailFast(true)
					timeComm.SetLabel(fmt.Sprintf("time[col=%d,gen=%d]", col, rgen))
					timeComm.FailFast(true)
					timeComm.AttachTelemetry(cfg.Tel)
				}
				spanB.Stop()

				// Redistribute the committed block-start state. Every
				// rank that held a column share contributes it; the full
				// state is reassembled identically everywhere (retired
				// ranks included, so reactivation needs no extra path).
				spanR := tRedist.Start()
				if oldPS == 0 {
					// Nothing distributed yet: every live rank already
					// holds the full committed state in fullU.
				} else {
					msg := make([]float64, 2, 2+len(u))
					if wasActive {
						msg[0], msg[1] = 1, float64(oldCol)
						msg = append(msg, u...)
					}
					all := surv.Allgather(mpi.Float64sToBytes(msg))
					shares := make([][]float64, oldPS)
					for _, raw := range all {
						x := mpi.BytesToFloat64s(raw)
						if len(x) >= 2 && x[0] > 0.5 {
							if j := int(x[1]); j >= 0 && j < oldPS && shares[j] == nil {
								shares[j] = x[2:]
							}
						}
					}
					fullU = fullU[:0]
					for j, s := range shares {
						if s == nil {
							// A whole temporal column died: the share
							// survives only on disk.
							if rz.CheckpointDir == "" {
								lost = fmt.Errorf("%w: column %d/%d has no live holder", ErrStateLost, j, oldPS)
								spanR.Stop()
								return nil
							}
							gl, err := checkpoint.LoadGrid(rz.CheckpointDir)
							if err != nil || gl.StepsDone != stepsDone || len(gl.U) != 6*n {
								lost = fmt.Errorf("%w: column %d/%d has no live holder and no matching checkpoint", ErrStateLost, j, oldPS)
								spanR.Stop()
								return nil
							}
							if v := grd.ValidateCheckpoint(gl.U, gl.Diag, gl.Block); v != nil {
								lost = fmt.Errorf("%w: checkpoint rejected: %w", ErrStateLost, v)
								spanR.Stop()
								return nil
							}
							fullU = gl.U
							break
						}
						fullU = append(fullU, s...)
					}
					if len(fullU) != 6*n {
						lost = fmt.Errorf("%w: reassembled %d floats, want %d", ErrStateLost, len(fullU), 6*n)
						spanR.Stop()
						return nil
					}
				}

				// Re-partition onto the new width and rebuild solvers.
				bankEvals()
				solver = nil
				if active {
					fullSys := full.Clone()
					fullSys.Unpack(fullU)
					local = hot.BlockPartition(fullSys, col, psNew)
					u = local.PackNew()
					specs := make([]pfasst.LevelSpec, len(levels))
					systems := make([]*DistVortexSystem, len(levels))
					for i, l := range levels {
						hs := hot.New(spaceComm, gridHotConfig(cfg, l.Theta, grd))
						systems[i] = NewDistVortexSystem(local, hs)
						systems[i].Instrument(cfg.Tel, i)
						specs[i] = pfasst.LevelSpec{Sys: systems[i], NNodes: l.NNodes}
					}
					fineSys, coarseSys = systems[0], systems[len(systems)-1]
					gs, err := pfasst.NewGridSolver(pfasst.Config{
						Levels:       specs,
						Iterations:   cfg.Iterations,
						CoarseSweeps: cfg.CoarseSweeps,
						Tol:          cfg.Tol,
						Tel:          cfg.Tel,
						Resilience:   rz,
						Guard:        grd,
					}, &pres)
					if err != nil {
						return err
					}
					solver = gs
					grd.AttachSpace(spaceComm)
					grd.CommitState(u, block)
				} else {
					u, local = nil, nil
					grd.AttachSpace(nil)
				}
				oldPS = psNew
				spanR.Stop()
				return nil
			}()

			// Recovery verdict: any fatal (0) outranks any transport
			// failure (1) outranks success (2). Transport failures mean
			// a rank died mid-recovery — loop, the next round's dead set
			// includes it.
			v := int64(2)
			if err != nil {
				v = 1
			}
			if lost != nil {
				v = 0
			}
			switch world.Agree(v) {
			case 2:
				return nil
			case 1:
				continue
			default:
				if lost != nil {
					return lost
				}
				return fmt.Errorf("%w: detected by a peer during recovery", ErrStateLost)
			}
		}
	}

	// attemptOnce runs one guarded block attempt on this active rank.
	// fatal marks failures no retry can fix (scrub-ladder exhaustion).
	attemptOnce := func() (be []float64, aerr error, fatal bool) {
		defer func() {
			if p := recover(); p != nil {
				cerr, ok := mpi.AsCommFailure(p)
				if !ok {
					panic(p)
				}
				// Transport failure: wake peers blocked in deadline-less
				// spatial collectives, then vote to abort.
				spaceComm.Revoke()
				timeComm.Revoke()
				be, aerr, fatal = nil, cerr, false
			}
		}()
		if v := grd.ScrubState(u); v != nil {
			return nil, v, true
		}
		tn := t0 + (float64(stepsDone)+float64(timeComm.Rank()))*dt
		end, err := solver.BlockAttempt(timeComm, tn, dt, u, block, gen)
		if err != nil {
			spaceComm.Revoke()
			timeComm.Revoke()
			return nil, err, false
		}
		// Guard block-end fold, exactly as on the PS=1 path: flips are
		// hashed rank-independently, the detectors see the identical
		// post-broadcast end state, and Agree (spatial) makes the
		// verdict uniform before it enters the world agreement.
		ginj := grd.InjectBlockEnd(end, block, retries)
		if v := grd.CheckBlockEnd(end, block, ginj); v != nil {
			if ginj > 0 {
				gpending += ginj
			} else {
				gpending++
			}
			return nil, v, false
		}
		return end, nil, false
	}

	// commitCheckpoint persists the committed block under the grid
	// manifest: slice 0's active ranks write the shards, column 0
	// gathers the full state for the manifest invariants, and one world
	// agreement decides done (2) / skip after a death (1) / fatal write
	// error (0).
	commitCheckpoint := func() (redo bool, err error) {
		span := tCkpt.Start()
		defer span.Stop()
		v := int64(2)
		werr := func() (werr error) {
			defer func() {
				if p := recover(); p != nil {
					cerr, ok := mpi.AsCommFailure(p)
					if !ok {
						panic(p)
					}
					v = 1
					werr = cerr
				}
			}()
			if !active || slice != 0 {
				return nil
			}
			st := &checkpoint.LevelState{
				Block:     block,
				StepsDone: stepsDone,
				TimeRanks: pt,
				T:         t0 + float64(stepsDone)*dt,
				U:         [][]float64{u},
			}
			if err := checkpoint.SaveGridShard(rz.CheckpointDir, col, st); err != nil {
				return err
			}
			// The Allgather doubles as the shard barrier: each column
			// contributes only after its own shard is durable, so when
			// column 0 has every share, every shard is on disk.
			all := spaceComm.Allgather(mpi.Float64sToBytes(u))
			if col != 0 {
				return nil
			}
			dims := make([]int, len(all))
			var fu []float64
			for j, raw := range all {
				x := mpi.BytesToFloat64s(raw)
				dims[j] = len(x)
				fu = append(fu, x...)
			}
			return checkpoint.CommitGridManifest(rz.CheckpointDir, &checkpoint.GridState{
				Block:      block,
				StepsDone:  stepsDone,
				TimeRanks:  pt,
				SpaceRanks: psNew,
				T:          t0 + float64(stepsDone)*dt,
				Dims:       dims,
				Diag:       grd.CheckpointDiag(fu),
			})
		}()
		if werr != nil && v == 2 {
			v = 0
		}
		switch world.Agree(v) {
		case 2:
			return false, nil
		case 1:
			// A rank died during the checkpoint phase. The block is
			// committed in memory; skip this checkpoint (the previous
			// manifest stays valid) and recover before the next block.
			return true, nil
		default:
			if werr != nil {
				return false, fmt.Errorf("core: block %d grid checkpoint: %w", block, werr)
			}
			return false, fmt.Errorf("core: block %d grid checkpoint failed on a peer", block)
		}
	}

	// runDegradedAll: no slice has enough survivors for parallel-in-time
	// work, so every live rank redundantly integrates the full remaining
	// interval with serial SDC. Output is deterministic and identical on
	// every rank; comm failures during setup report back for another
	// recovery round.
	runDegradedAll := func() (Result, error, bool) {
		ok := true
		var res Result
		var rerr error
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, is := mpi.AsCommFailure(p); !is {
						panic(p)
					}
					ok = false
				}
			}()
			world.FaultPoint("degraded", stepsDone)
			single := surv.Split(surv.Rank(), 0)
			fullSys := full.Clone()
			fullSys.Unpack(fullU)
			hs := hot.New(single, gridHotConfig(cfg, levels[0].Theta, nil))
			sys := NewDistVortexSystem(fullSys, hs)
			sys.Instrument(cfg.Tel, 0)
			in := sdc.NewIntegrator(sys, levels[0].NNodes, fallbackSweeps)
			uu := fullSys.PackNew()
			remaining := nsteps - stepsDone
			tn := t0 + float64(stepsDone)*dt
			in.Integrate(tn, tn+float64(remaining)*dt, remaining, uu)
			pres.SweepsFine += remaining * fallbackSweeps
			pres.DegradedBlocks++
			cfg.Tel.Counter(pfasst.CounterDegradedBlocks).Inc()
			pres.U = uu
			pres.FinalRanks = 1
			fullSys.Unpack(uu)
			bankEvals()
			res = Result{
				Local:        fullSys,
				SpatialIndex: 0,
				TimeSlice:    slice,
				SpatialRanks: 1,
				Participated: true,
				PFASST:       pres,
				FineEvals:    fineEvals + sys.Evals,
				CoarseEvals:  coarseEvals,
			}
		}()
		return res, rerr, ok
	}

	// The first "recovery" round is the initial decomposition (empty
	// dead set). It runs even when a resumed checkpoint already covers
	// every step, so the final Result always holds distributed state.
	needRecovery := true
	for {
		if needRecovery {
			if err := recoverGrid(); err != nil {
				return Result{}, err
			}
			needRecovery = false
			if psNew == 0 {
				res, err, ok := runDegradedAll()
				if !ok {
					needRecovery = true
					continue
				}
				return res, err
			}
		}
		if stepsDone >= nsteps {
			break
		}

		// Cancellation folds into an extra world agreement (gated on
		// Ctx/OnBlock, so ctx-free runs are untouched): every rank —
		// active or retired — takes the identical abort-or-continue
		// decision, and a cancel lands only on the committed block-start
		// state, which the grid checkpoint already covers.
		if cfg.Ctx != nil || cfg.OnBlock != nil {
			if cfg.OnBlock != nil && active && col == 0 && timeComm.Rank() == 0 {
				cfg.OnBlock(block)
			}
			cerr := pfasst.CancelErr(cfg.Ctx, block)
			av := int64(2)
			if cerr != nil {
				av = 0
			}
			if world.Agree(av) == 0 {
				if cerr == nil {
					cerr = pfasst.CancelErr(cfg.Ctx, block)
				}
				if cerr == nil {
					cerr = fmt.Errorf("core: block %d: %w: canceled on a peer", block, pfasst.ErrCanceled)
				}
				return Result{}, cerr
			}
		}

		world.FaultPoint("block", stepsDone)
		var blockEnd []float64
		var aerr error
		fatal := false
		if active {
			blockEnd, aerr, fatal = attemptOnce()
		}
		v := int64(2)
		if aerr != nil {
			v = 1
		}
		if fatal {
			v = 0
		}
		switch world.Agree(v) {
		case 2:
			stepsDone += pt
			block++
			gen++
			retries = 0
			lastAbort = nil
			if active {
				u = blockEnd
				grd.RecordRecovered(gpending)
				gpending = 0
				grd.CommitState(u, block)
			}
			if psNew < ps0 {
				if solver != nil {
					solver.RecordDegraded()
				} else {
					pres.DegradedBlocks++
				}
			}
			if rz.CheckpointDir != "" {
				redo, err := commitCheckpoint()
				if err != nil {
					return Result{}, err
				}
				if redo {
					needRecovery = true
				}
			}
		case 1:
			gen++
			if aerr != nil {
				lastAbort = aerr
			}
			if solver != nil {
				solver.RecordRestart()
			} else {
				pres.BlockRestarts++
			}
			needRecovery = true
		default:
			if aerr != nil {
				return Result{}, aerr
			}
			return Result{}, grd.PeerViolation("state-checksum", block)
		}
	}

	bankEvals()
	pres.FinalRanks = pt
	if !active {
		return Result{
			SpatialIndex: -1,
			TimeSlice:    slice,
			SpatialRanks: psNew,
			Participated: false,
			PFASST:       pres,
			FineEvals:    fineEvals,
			CoarseEvals:  coarseEvals,
		}, nil
	}
	pres.U = u
	out := local.Clone()
	out.Unpack(u)
	return Result{
		Local:        out,
		SpatialIndex: col,
		TimeSlice:    slice,
		SpatialRanks: psNew,
		Participated: true,
		PFASST:       pres,
		FineEvals:    fineEvals,
		CoarseEvals:  coarseEvals,
	}, nil
}
