package neighbor

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/particle"
	"repro/internal/vec"
)

func TestMatchesBruteForce(t *testing.T) {
	sys := particle.RandomVortexBlob(300, 0.2, 61)
	const radius = 0.4
	g := Build(sys, radius)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		i := rng.Intn(sys.N())
		var got []int
		g.ForEachNeighbor(i, func(j int, r vec.Vec3, d float64) {
			got = append(got, j)
			if d > radius {
				t.Fatalf("neighbor %d at distance %g > radius", j, d)
			}
			want := sys.Particles[i].Pos.Sub(sys.Particles[j].Pos)
			if r != want {
				t.Fatalf("separation vector wrong")
			}
		})
		var want []int
		for j := range sys.Particles {
			if j == i {
				continue
			}
			if sys.Particles[i].Pos.Sub(sys.Particles[j].Pos).Norm() <= radius {
				want = append(want, j)
			}
		}
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("particle %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("particle %d: neighbor sets differ", i)
			}
		}
	}
}

func TestForEachWithinIncludesExactPoint(t *testing.T) {
	sys := &particle.System{Particles: []particle.Particle{
		{Pos: vec.V3(0, 0, 0)}, {Pos: vec.V3(1, 0, 0)},
	}}
	g := Build(sys, 0.5)
	n := 0
	g.ForEachWithin(vec.V3(0, 0, 0), func(j int, r vec.Vec3, d float64) { n++ })
	if n != 1 {
		t.Fatalf("found %d, want the particle at the query point", n)
	}
}

func TestCount(t *testing.T) {
	sys := &particle.System{Particles: []particle.Particle{
		{Pos: vec.V3(0, 0, 0)},
		{Pos: vec.V3(0.1, 0, 0)},
		{Pos: vec.V3(0, 0.1, 0)},
		{Pos: vec.V3(5, 5, 5)},
	}}
	g := Build(sys, 0.3)
	if got := g.Count(0); got != 2 {
		t.Fatalf("Count(0) = %d", got)
	}
	if got := g.Count(3); got != 0 {
		t.Fatalf("Count(3) = %d", got)
	}
	if g.Radius() != 0.3 {
		t.Fatal("radius accessor")
	}
}

func TestBuildPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(&particle.System{}, 0)
}
