// Package neighbor provides fixed-radius neighbor search over particle
// systems via cell lists (uniform hashing of Morton-style grid cells).
// It is the short-range counterpart to the tree code's long-range
// machinery and the substrate of the SPH discipline: PEPC's
// smooth-particle-hydrodynamics applications (stellar disc dynamics)
// need the particles within the kernel support radius.
package neighbor

import (
	"math"

	"repro/internal/particle"
	"repro/internal/vec"
)

// Grid is a cell-list index over a particle snapshot for a fixed
// search radius.
type Grid struct {
	radius float64
	inv    float64
	cells  map[cellKey][]int32
	sys    *particle.System
}

type cellKey struct{ i, j, k int32 }

// Build indexes the system for queries with the given radius (> 0).
func Build(sys *particle.System, radius float64) *Grid {
	if radius <= 0 {
		panic("neighbor: radius must be positive")
	}
	g := &Grid{
		radius: radius,
		inv:    1 / radius,
		cells:  make(map[cellKey][]int32, sys.N()),
		sys:    sys,
	}
	for i, p := range sys.Particles {
		k := g.keyOf(p.Pos)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *Grid) keyOf(x vec.Vec3) cellKey {
	return cellKey{
		int32(math.Floor(x.X * g.inv)),
		int32(math.Floor(x.Y * g.inv)),
		int32(math.Floor(x.Z * g.inv)),
	}
}

// Radius returns the search radius the grid was built for.
func (g *Grid) Radius() float64 { return g.radius }

// ForEachNeighbor calls fn(j, r, dist) for every particle j ≠ i within
// the radius of particle i, where r = x_i − x_j.
func (g *Grid) ForEachNeighbor(i int, fn func(j int, r vec.Vec3, dist float64)) {
	x := g.sys.Particles[i].Pos
	g.ForEachWithin(x, func(j int, r vec.Vec3, dist float64) {
		if j != i {
			fn(j, r, dist)
		}
	})
}

// ForEachWithin calls fn(j, r, dist) for every particle within the
// radius of an arbitrary point x (including a particle at exactly x).
func (g *Grid) ForEachWithin(x vec.Vec3, fn func(j int, r vec.Vec3, dist float64)) {
	c := g.keyOf(x)
	r2max := g.radius * g.radius
	for di := int32(-1); di <= 1; di++ {
		for dj := int32(-1); dj <= 1; dj++ {
			for dk := int32(-1); dk <= 1; dk++ {
				bucket := g.cells[cellKey{c.i + di, c.j + dj, c.k + dk}]
				for _, j := range bucket {
					r := x.Sub(g.sys.Particles[j].Pos)
					d2 := r.Norm2()
					if d2 <= r2max {
						fn(int(j), r, math.Sqrt(d2))
					}
				}
			}
		}
	}
}

// Count returns the number of neighbors of particle i (excluding i).
func (g *Grid) Count(i int) int {
	n := 0
	g.ForEachNeighbor(i, func(int, vec.Vec3, float64) { n++ })
	return n
}
