// Package parareal implements the classical parareal algorithm of
// Lions, Maday and Turinici — the baseline parallel-in-time method
// whose efficiency bound (1/K) PFASST relaxes to Ks/Kp (Section III-B4
// of the paper).
//
// Each rank of the communicator owns one time slice. The algorithm
// iterates
//
//	U^{k+1}_{n+1} = G(U^{k+1}_n) + F(U^k_n) − G(U^k_n),
//
// with the cheap coarse propagator G applied serially (pipelined along
// the ranks) and the expensive fine propagator F applied in parallel.
package parareal

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/ode"
)

// Propagator advances the state u in place from t0 to t1.
type Propagator func(t0, t1 float64, u []float64)

// Result reports one rank's view of a parareal solve.
type Result struct {
	// U is the solution at the end of this rank's time slice after the
	// final iteration.
	U []float64
	// Final is the solution at the end of the full interval (the last
	// rank's U), available on every rank.
	Final []float64
	// Corrections[k] is the max-norm update of the slice-end value in
	// iteration k — the convergence monitor.
	Corrections []float64
}

const (
	tagInit = 700001
	tagIter = 700002
)

// Run executes the parareal iteration on the communicator: rank n owns
// the time slice [t0 + n·Δ, t0 + (n+1)·Δ] with Δ = (t1−t0)/P. Every
// rank must pass the same arguments. The fine and coarse propagators
// are used as black boxes, exactly as in the original method.
func Run(comm *mpi.Comm, coarse, fine Propagator, t0, t1 float64, u0 []float64, iterations int) (Result, error) {
	p := comm.Size()
	n := comm.Rank()
	if iterations < 1 {
		return Result{}, fmt.Errorf("parareal: iterations %d < 1", iterations)
	}
	dim := len(u0)
	slice := (t1 - t0) / float64(p)
	tn := t0 + float64(n)*slice
	tn1 := tn + slice

	// Initialization: serial coarse propagation (pipelined).
	uStart := append([]float64(nil), u0...)
	if n > 0 {
		uStart = comm.RecvFloat64s(n-1, tagInit)
	}
	gOld := append([]float64(nil), uStart...)
	coarse(tn, tn1, gOld)
	if n < p-1 {
		comm.SendFloat64s(n+1, tagInit, gOld)
	}
	uEnd := append([]float64(nil), gOld...)

	res := Result{Corrections: make([]float64, 0, iterations)}
	fVal := make([]float64, dim)
	for k := 0; k < iterations; k++ {
		// Parallel fine propagation from the current initial value.
		ode.Copy(fVal, uStart)
		fine(tn, tn1, fVal)

		// Receive the corrected initial value (serial sweep).
		if n > 0 {
			uStart = comm.RecvFloat64s(n-1, tagIter)
		}
		gNew := append([]float64(nil), uStart...)
		coarse(tn, tn1, gNew)

		prev := append([]float64(nil), uEnd...)
		for i := range uEnd {
			uEnd[i] = gNew[i] + fVal[i] - gOld[i]
		}
		if n < p-1 {
			comm.SendFloat64s(n+1, tagIter, uEnd)
		}
		ode.Copy(gOld, gNew)
		res.Corrections = append(res.Corrections, ode.MaxDiff(uEnd, prev))
	}
	res.U = uEnd
	res.Final = mpi.BytesToFloat64s(comm.Bcast(p-1, mpi.Float64sToBytes(uEnd)))
	return res, nil
}

// EfficiencyBound returns the classical parareal parallel-efficiency
// bound 1/K (the PFASST bound Ks/Kp is implemented in package pfasst).
func EfficiencyBound(iterations int) float64 {
	if iterations < 1 {
		return 1
	}
	return 1 / float64(iterations)
}
