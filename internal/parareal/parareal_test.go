package parareal

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/ode"
	"repro/internal/rk"
)

// propagators builds coarse (Euler, few steps) and fine (RK4, many
// steps) propagators for a system.
func propagators(sys ode.System) (Propagator, Propagator) {
	coarse := func(t0, t1 float64, u []float64) {
		rk.NewStepper(rk.Euler(), sys).Integrate(t0, t1, 5, u)
	}
	fine := func(t0, t1 float64, u []float64) {
		rk.NewStepper(rk.Classic4(), sys).Integrate(t0, t1, 50, u)
	}
	return coarse, fine
}

// serialFine integrates the full interval with the fine propagator.
func serialFine(sys ode.System, fine Propagator, t0, t1 float64, u0 []float64, p int) []float64 {
	u := append([]float64(nil), u0...)
	slice := (t1 - t0) / float64(p)
	for n := 0; n < p; n++ {
		fine(t0+float64(n)*slice, t0+float64(n+1)*slice, u)
	}
	return u
}

func TestParareaConvergesToFineSolution(t *testing.T) {
	sys, exact := ode.Oscillator(1)
	coarse, fine := propagators(sys)
	const p = 8
	want := serialFine(sys, fine, 0, 4, exact(0), p)
	err := mpi.Run(p, func(c *mpi.Comm) error {
		res, err := Run(c, coarse, fine, 0, 4, exact(0), p) // K = P iterations: exact
		if err != nil {
			return err
		}
		if d := ode.MaxDiff(res.Final, want); d > 1e-11 {
			t.Errorf("rank %d: parareal with K=P differs from serial fine by %g", c.Rank(), d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParareaFewIterationsAccurate(t *testing.T) {
	sys, exact := ode.Oscillator(1)
	coarse, fine := propagators(sys)
	const p = 8
	want := serialFine(sys, fine, 0, 4, exact(0), p)
	var errK2, errK4 float64
	err := mpi.Run(p, func(c *mpi.Comm) error {
		r2, err := Run(c, coarse, fine, 0, 4, exact(0), 2)
		if err != nil {
			return err
		}
		r4, err := Run(c, coarse, fine, 0, 4, exact(0), 4)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			errK2 = ode.MaxDiff(r2.Final, want)
			errK4 = ode.MaxDiff(r4.Final, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if errK4 >= errK2 {
		t.Fatalf("more iterations should improve: K=2 err %g, K=4 err %g", errK2, errK4)
	}
	if errK4 > 1e-4 {
		t.Fatalf("K=4 error %g too large", errK4)
	}
}

func TestCorrectionsDecrease(t *testing.T) {
	sys, exact := ode.Logistic(0.1)
	_ = exact
	coarse, fine := propagators(sys)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		res, err := Run(c, coarse, fine, 0, 2, []float64{0.1}, 4)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			// On the last slice the corrections must decay.
			first, last := res.Corrections[1], res.Corrections[len(res.Corrections)-1]
			if last > first {
				t.Errorf("corrections grew: %v", res.Corrections)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankMatchesFinePlusCorrection(t *testing.T) {
	// With one rank, parareal is G + F − G = F after one iteration.
	sys, exact := ode.Dahlquist(-1)
	coarse, fine := propagators(sys)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		res, err := Run(c, coarse, fine, 0, 1, exact(0), 1)
		if err != nil {
			return err
		}
		want := append([]float64(nil), exact(0)...)
		fine(0, 1, want)
		if d := ode.MaxDiff(res.Final, want); d > 1e-13 {
			t.Errorf("single-rank parareal differs from fine by %g", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadIterations(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := Run(c, nil, nil, 0, 1, []float64{1}, 0)
		if err == nil {
			t.Error("expected error for 0 iterations")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyBound(t *testing.T) {
	if EfficiencyBound(4) != 0.25 {
		t.Fatal("1/K bound wrong")
	}
	if EfficiencyBound(0) != 1 {
		t.Fatal("degenerate bound wrong")
	}
	if math.Abs(EfficiencyBound(3)-1.0/3) > 1e-15 {
		t.Fatal("1/3 bound wrong")
	}
}
