package nbody_test

import (
	"fmt"

	nbody "repro"
)

// The minimal end-to-end simulation: build the paper's model problem,
// attach the Barnes-Hut solver and SDC(4), and advance it.
func ExampleSimulation() {
	sys := nbody.ScaledVortexSheet(500)
	sim := nbody.NewSimulation(sys) // tree θ=0.3, SDC(4)
	if err := sim.Run(0, 2, 2); err != nil {
		panic(err)
	}
	d := nbody.Diagnose(sys)
	fmt.Printf("sheet descended: %v\n", d.Centroid.Z < -0.05)
	fmt.Printf("impulse magnitude ≈ 0.5: %v\n",
		d.LinearImpulse.Z > -0.51 && d.LinearImpulse.Z < -0.49)
	// Output:
	// sheet descended: true
	// impulse magnitude ≈ 0.5: true
}

// Space-time parallelism: PFASST(2,2,PT) over parallel trees, verified
// against the size of the input.
func ExampleRunSpaceTime() {
	sys := nbody.ScaledVortexSheet(128)
	cfg := nbody.DefaultSpaceTime(2, 2) // PT=2 time slices × PS=2 ranks
	out, stats, err := nbody.RunSpaceTime(cfg, sys, 0, 1, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("particles: %d\n", out.N())
	fmt.Printf("converging: %v\n", stats.LastSliceResidual < 1e-2)
	// Output:
	// particles: 128
	// converging: true
}

// Remeshing restores a quadrature-quality particle distribution while
// conserving the invariants.
func ExampleRemesh() {
	sys := nbody.ScaledVortexSheet(400)
	before := nbody.Diagnose(sys).TotalCirculation
	out, stats := nbody.Remesh(sys, nbody.RemeshConfig{H: 0.15})
	after := nbody.Diagnose(out).TotalCirculation
	fmt.Printf("regridded %d particles onto a grid: %v\n", stats.Before, stats.After > 0)
	fmt.Printf("circulation conserved: %v\n", after.Sub(before).Norm() < 1e-12)
	// Output:
	// regridded 400 particles onto a grid: true
	// circulation conserved: true
}

// Kernels are looked up by name; the paper's sixth-order algebraic
// kernel is the default everywhere.
func ExampleKernel() {
	k, _ := nbody.Kernel("algebraic6")
	fmt.Println(k.Name(), k.Order())
	// Output:
	// algebraic6 6
}
