// Package nbody is a massively space-time parallel N-body solver: a Go
// reproduction of Speck, Ruprecht, Krause, Emmett, Minion, Winkel,
// Gibbon, "A massively space-time parallel N-body solver" (SC 2012).
//
// The library couples a Barnes-Hut tree code in the style of PEPC
// (Morton-curve domain decomposition, branch-node exchange, multipole
// acceptance criterion s/d ≤ θ) with the parallel-in-time integrator
// PFASST (parareal iterations intertwined with spectral deferred
// correction sweeps and FAS corrections). Spatial coarsening for the
// PFASST hierarchy is obtained by raising θ on the coarse level.
//
// This root package is the high-level façade: build a particle system,
// pick a spatial solver and a time integrator, and run — serially,
// space-parallel, or space-time parallel. Parallel runs execute on an
// in-process message-passing runtime (one goroutine per rank) with
// optional virtual clocks that model a Blue Gene/P-like machine; see
// DESIGN.md for how this substitutes for the paper's 262,144-core
// installation.
package nbody

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/field"
	"repro/internal/kernel"
	"repro/internal/particle"
	"repro/internal/rk"
	"repro/internal/sdc"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Re-exported foundation types. Construct systems through the helpers
// below (or fill the structs directly).
type (
	// Particle is a regularized vortex particle (or charged particle
	// in the Coulomb discipline).
	Particle = particle.Particle
	// System is a particle ensemble with its smoothing core size σ.
	System = particle.System
	// Vec3 is a vector in R³.
	Vec3 = vec.Vec3
	// Diagnostics summarizes conserved quantities and sheet monitors.
	Diagnostics = particle.Diagnostics
	// Smoothing is a regularization kernel (ζ, q).
	Smoothing = kernel.Smoothing
	// Solver computes velocities and vortex stretching for a System.
	Solver = field.Evaluator
)

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return vec.V3(x, y, z) }

// VortexSheet returns the paper's model problem: n particles on the
// unit sphere with ω = (3/8π)·sinθ·e_φ and σ = 18.53·h (Eq. 7–8).
func VortexSheet(n int) *System {
	return particle.SphericalVortexSheet(particle.DefaultSheet(n))
}

// ScaledVortexSheet is VortexSheet with the paper's absolute core size
// σ ≈ 0.657 (its value at N = 10,000) — the right choice when scaling
// n down, since σ = 18.53·h over-smooths small ensembles.
func ScaledVortexSheet(n int) *System {
	return particle.SphericalVortexSheet(particle.ScaledSheet(n))
}

// CoulombCloud returns the homogeneous neutral plasma workload of the
// strong-scaling study (Fig. 5).
func CoulombCloud(n int, seed int64) *System {
	return particle.HomogeneousCoulomb(n, seed)
}

// RandomBlob returns a Gaussian cloud of vortex particles (a generic
// test workload).
func RandomBlob(n int, sigma float64, seed int64) *System {
	return particle.RandomVortexBlob(n, sigma, seed)
}

// Diagnose computes the invariants and monitors of a system.
func Diagnose(s *System) Diagnostics { return particle.Diagnose(s) }

// Kernel returns a smoothing kernel by name: "algebraic2",
// "algebraic4", "algebraic6" (the paper's sixth-order kernel),
// "winckelmans-leonard", "gaussian" or "singular".
func Kernel(name string) (Smoothing, error) {
	k := kernel.ByName(name)
	if k == nil {
		return nil, fmt.Errorf("nbody: unknown kernel %q", name)
	}
	return k, nil
}

// NewDirectSolver returns the O(N²) direct-summation solver with the
// sixth-order algebraic kernel and the paper's transpose stretching
// scheme.
func NewDirectSolver() Solver {
	return direct.New(kernel.Algebraic6(), kernel.Transpose, 0)
}

// NewTreeSolver returns the Barnes-Hut solver with MAC parameter θ
// (θ = 0 reproduces direct summation; the paper uses 0.3 fine / 0.6
// coarse).
func NewTreeSolver(theta float64) Solver {
	return tree.NewSolver(kernel.Algebraic6(), kernel.Transpose, theta)
}

// NewTreeSolverKernel is NewTreeSolver with an explicit kernel.
func NewTreeSolverKernel(sm Smoothing, theta float64) Solver {
	return tree.NewSolver(sm, kernel.Transpose, theta)
}

// Integrator selects the time-stepping method of a serial Simulation.
type Integrator struct {
	kind   string
	order  int // RK order
	nodes  int // SDC collocation nodes
	sweeps int // SDC sweeps
}

// RK returns a classical Runge–Kutta integrator of order 1–4 (the
// paper's Fig. 1 uses order 2).
func RK(order int) Integrator { return Integrator{kind: "rk", order: order} }

// SDC returns the spectral-deferred-correction integrator SDC(sweeps)
// on nodes Gauss–Lobatto points (the paper's baseline: 3 nodes, 4
// sweeps).
func SDC(nodes, sweeps int) Integrator {
	return Integrator{kind: "sdc", nodes: nodes, sweeps: sweeps}
}

// Simulation evolves a particle system with a spatial solver and a
// time integrator.
type Simulation struct {
	Sys        *System
	Solver     Solver
	Integrator Integrator
	// OnStep, when non-nil, is called after every step with the
	// current time and state.
	OnStep func(t float64, sys *System)
}

// NewSimulation returns a simulation with the paper's defaults: tree
// solver at θ = 0.3 and SDC(4) on three Lobatto nodes.
func NewSimulation(sys *System) *Simulation {
	return &Simulation{Sys: sys, Solver: NewTreeSolver(0.3), Integrator: SDC(3, 4)}
}

// Run advances the system in place from t0 to t1 in nsteps equal
// steps.
func (s *Simulation) Run(t0, t1 float64, nsteps int) error {
	if nsteps < 1 {
		return fmt.Errorf("nbody: nsteps %d < 1", nsteps)
	}
	odeSys := core.NewVortexSystem(s.Sys, s.Solver)
	u := s.Sys.PackNew()
	dt := (t1 - t0) / float64(nsteps)

	step := func(t float64, u []float64) error { return nil }
	switch s.Integrator.kind {
	case "", "sdc":
		nodes, sweeps := s.Integrator.nodes, s.Integrator.sweeps
		if nodes == 0 {
			nodes, sweeps = 3, 4
		}
		in := sdc.NewIntegrator(odeSys, nodes, sweeps)
		step = func(t float64, u []float64) error {
			in.Step(t, dt, u)
			return nil
		}
	case "rk":
		scheme, err := rk.ByOrder(s.Integrator.order)
		if err != nil {
			return err
		}
		st := rk.NewStepper(scheme, odeSys)
		step = func(t float64, u []float64) error {
			st.Step(t, dt, u)
			return nil
		}
	default:
		return fmt.Errorf("nbody: unknown integrator kind %q", s.Integrator.kind)
	}

	for n := 0; n < nsteps; n++ {
		if err := step(t0+float64(n)*dt, u); err != nil {
			return err
		}
		if s.OnStep != nil {
			s.Sys.Unpack(u)
			s.OnStep(t0+float64(n+1)*dt, s.Sys)
		}
	}
	s.Sys.Unpack(u)
	return nil
}
