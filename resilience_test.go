package nbody

// Facade-level chaos tests: the full space-time solver (parallel trees
// + PFASST) under seeded fault plans. Transient plans must be bitwise
// invisible; a planned rank crash must complete degraded within
// tolerance; misconfigurations must be rejected up front.

import (
	"testing"
)

func chaosConfig(pt, ps int) SpaceTimeConfig {
	cfg := DefaultSpaceTime(pt, ps)
	cfg.Resilience.Enabled = true
	return cfg
}

func TestFacadeResilientMatchesPlain(t *testing.T) {
	sys := RandomBlob(48, 0.2, 7)
	plain, _, err := RunSpaceTime(DefaultSpaceTime(4, 1), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunSpaceTime(chaosConfig(4, 1), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Particles {
		if plain.Particles[i] != res.Particles[i] {
			t.Fatalf("resilient path changed particle %d without any faults", i)
		}
	}
}

func TestFacadeTransientChaosBitwise(t *testing.T) {
	sys := RandomBlob(48, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(2, 2)
	cfg.Resilience.FaultPlan = "drop=0.08,delay=0.15:30us,corrupt=0.04"
	cfg.Resilience.FaultSeed = 11
	cfg.Telemetry = true
	chaos, stats, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Particles {
		if clean.Particles[i] != chaos.Particles[i] {
			t.Fatalf("transient chaos changed particle %d", i)
		}
	}
	if stats.Run.Counter("fault.injected") == 0 {
		t.Fatal("no faults recorded despite a lossy plan")
	}
	if stats.Run.Counter("fault.recovered") == 0 {
		t.Fatal("no transport recoveries recorded")
	}
}

func TestFacadeCrashRecovery(t *testing.T) {
	sys := RandomBlob(48, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(4, 1), sys, 0, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(4, 1)
	cfg.Resilience.FaultPlan = "crash=1@iter:1"
	cfg.Telemetry = true
	out, stats, err := RunSpaceTime(cfg, sys, 0, 0.2, 8)
	if err != nil {
		t.Fatalf("crash was not survived: %v", err)
	}
	if stats.Run.Counter("fault.degraded_blocks") == 0 {
		t.Fatal("no degraded blocks recorded after a crash")
	}
	if stats.Run.Counter("pfasst.block_restarts") == 0 {
		t.Fatal("no block restart recorded after a crash")
	}
	// Degraded mode redoes blocks on fewer ranks: not bitwise, but it
	// must stay scientifically consistent with the fault-free result.
	var maxd float64
	for i := range clean.Particles {
		d := clean.Particles[i].Pos.Sub(out.Particles[i].Pos).Norm()
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-4 {
		t.Fatalf("degraded-mode positions diverge by %g", maxd)
	}
}

func TestFacadeRejectsBadResilienceConfigs(t *testing.T) {
	sys := RandomBlob(16, 0.2, 7)
	// Crash plan without the resilient loop: refuse, don't hang.
	cfg := DefaultSpaceTime(2, 1)
	cfg.Resilience.FaultPlan = "crash=0@block:0"
	if _, _, err := RunSpaceTime(cfg, sys, 0, 0.1, 2); err == nil {
		t.Fatal("crash plan without Resilience.Enabled accepted")
	}
	// Crash recovery at PS>1 used to be rejected with ErrUnsupported;
	// the grid-resilient loop (spatial shrink + re-decomposition) now
	// accepts and survives it.
	cfg = chaosConfig(2, 2)
	cfg.Resilience.FaultPlan = "crash=0@block:0"
	if _, _, err := RunSpaceTime(cfg, sys, 0, 0.1, 2); err != nil {
		t.Fatalf("crash plan with PS>1 no longer supported: %v", err)
	}
	// The guard layer composes with the resilient loop at any PS:
	// corruption and crash verdicts share the per-block grid agreement.
	cfg = chaosConfig(2, 2)
	cfg.Guard.Enabled = true
	if _, _, err := RunSpaceTime(cfg, sys, 0, 0.1, 2); err != nil {
		t.Fatalf("guard + resilience with PS>1 no longer supported: %v", err)
	}
	// Malformed plan strings are reported, not ignored.
	cfg = chaosConfig(2, 1)
	cfg.Resilience.FaultPlan = "bogus=1"
	if _, _, err := RunSpaceTime(cfg, sys, 0, 0.1, 2); err == nil {
		t.Fatal("malformed fault plan accepted")
	}
}
