package nbody

// Determinism regression: the space-time solver must be bitwise
// reproducible run-to-run for a fixed configuration. The in-process
// MPI delivers messages per (source, tag) in send order and the
// synchronous traversal keeps floating-point summation order fixed, so
// two identical runs must produce identical particle states — and the
// telemetry must agree on the work done (interaction counts).

import (
	"testing"
)

func runOnce(t *testing.T, pt, ps int) (*System, SpaceTimeStats) {
	t.Helper()
	cfg := DefaultSpaceTime(pt, ps)
	cfg.Telemetry = true
	sys := RandomBlob(64, 0.2, 42)
	out, stats, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatalf("PT=%d PS=%d: %v", pt, ps, err)
	}
	return out, stats
}

func TestSpaceTimeDeterminism(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
		pt, ps := dims[0], dims[1]
		a, sa := runOnce(t, pt, ps)
		b, sb := runOnce(t, pt, ps)
		if a.N() != b.N() {
			t.Fatalf("PT=%d PS=%d: particle counts differ", pt, ps)
		}
		for i := range a.Particles {
			// Bitwise equality, not a tolerance: any drift means the
			// run picked up a source of nondeterminism (map iteration,
			// goroutine scheduling leaking into summation order, ...).
			if a.Particles[i] != b.Particles[i] {
				t.Fatalf("PT=%d PS=%d: particle %d differs between identical runs:\n%+v\nvs\n%+v",
					pt, ps, i, a.Particles[i], b.Particles[i])
			}
		}
		if sa.Run == nil || sb.Run == nil {
			t.Fatalf("PT=%d PS=%d: telemetry snapshot missing", pt, ps)
		}
		for _, counter := range []string{
			"hot.interactions", "hot.mac_accepts", "hot.mac_rejects",
			"pfasst.fine_sweeps", "pfasst.coarse_sweeps", "mpi.sends",
		} {
			ca, cb := sa.Run.Counter(counter), sb.Run.Counter(counter)
			if ca != cb {
				t.Errorf("PT=%d PS=%d: %s differs between identical runs: %d vs %d",
					pt, ps, counter, ca, cb)
			}
			if ca == 0 && counter == "hot.interactions" {
				t.Errorf("PT=%d PS=%d: no interactions recorded", pt, ps)
			}
		}
		if sa.LastSliceResidual != sb.LastSliceResidual {
			t.Errorf("PT=%d PS=%d: residuals differ: %g vs %g",
				pt, ps, sa.LastSliceResidual, sb.LastSliceResidual)
		}
	}
}

func TestSpaceTimeDeterminismModeled(t *testing.T) {
	// The virtual-clock path must be deterministic too: identical
	// modeled runs report the same modeled seconds to the bit.
	cfg := DefaultSpaceTime(2, 2)
	cfg.Modeled = true
	sys := RandomBlob(48, 0.2, 7)
	_, sa, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, sb, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sa.ModeledSeconds != sb.ModeledSeconds {
		t.Fatalf("modeled seconds differ: %v vs %v", sa.ModeledSeconds, sb.ModeledSeconds)
	}
}
