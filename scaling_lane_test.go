package nbody

// Scaling lane (ci.sh): a small joint space×time scaling study that
// must reproduce the Fig. 5 × Fig. 8 crossover shape on every commit —
// beyond spatial saturation, spending the same modeled cores on a
// PS×PT grid with PT > 1 beats the space-only decomposition, and the
// batched branch exchange beats the ring where the ring is
// latency-bound. The executed part runs the real solver on a small
// grid (race-detector friendly); the modeled part checks the
// extrapolation's invariants.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/hot"
)

// laneConfig is the scaled-down study: an executed 8-rank grid and
// modeled grids up to 4096 ranks (16,384 modeled cores at the paper's
// 4 cores/rank) — among them the 64-spatial × 16-time layout. The
// modeled particle count is small enough that the branch exchange
// saturates the spatial decomposition inside the lane's core budget;
// the full-size study is the opt-in fig5-xt experiment.
func laneConfig() experiments.Fig5XTConfig {
	cfg := experiments.DefaultFig5XT()
	cfg.NExec = 1024
	cfg.ExecRanks = []int{1, 2, 4, 8}
	cfg.GridN = 512
	cfg.GridRanks = 8
	cfg.GridPTs = []int{1, 2, 4}
	cfg.Steps = 4
	cfg.NModel = 2e4
	cfg.ModelCores = []int{4096, 16384}
	cfg.ModelPTs = []int{1, 2, 4, 8, 16}
	cfg.ModelSteps = 16
	return cfg
}

func TestScalingLaneModelCrossover(t *testing.T) {
	cfg := laneConfig()
	branchPoints, _ := experiments.Fig5XTBranch(cfg)
	if len(branchPoints) != 2*len(cfg.ExecRanks) {
		t.Fatalf("branch study ran %d points, want %d", len(branchPoints), 2*len(cfg.ExecRanks))
	}
	for _, p := range branchPoints {
		if p.Mode == hot.BranchBatched.String() && p.Ranks > 1 {
			if p.Fetches != 0 {
				t.Fatalf("batched exchange at %d ranks left %d on-demand fetches", p.Ranks, p.Fetches)
			}
			if p.Prefetched == 0 {
				t.Fatalf("batched exchange at %d ranks prefetched nothing", p.Ranks)
			}
		}
	}

	res, _ := experiments.BenchPR7Model(cfg, branchPoints)
	byKey := map[[3]int]map[string]experiments.XTModelPoint{}
	for _, p := range res.Model {
		k := [3]int{p.Cores, p.PT, p.PS}
		if byKey[k] == nil {
			byKey[k] = map[string]experiments.XTModelPoint{}
		}
		byKey[k][p.Mode] = p
		sum := p.TSort + p.TBuild + p.TBranch + p.TEval + p.TPfasstComm
		if d := sum - p.TTotal; d > 1e-12*p.TTotal || d < -1e-12*p.TTotal {
			t.Fatalf("phase columns do not sum to the total at %+v: %g vs %g", k, sum, p.TTotal)
		}
	}
	// The batched exchange must beat the latency-bound ring on the
	// space-only point of the largest modeled grid.
	big := cfg.ModelCores[len(cfg.ModelCores)-1]
	pure := byKey[[3]int{big, 1, big / cfg.CoresPerRank}]
	if pure[hot.BranchBatched.String()].TBranch >= pure[hot.BranchRing.String()].TBranch {
		t.Fatalf("modeled batched branch exchange not faster than ring at %d cores: %g vs %g",
			big, pure[hot.BranchBatched.String()].TBranch, pure[hot.BranchRing.String()].TBranch)
	}
	// The crossover shape: at the largest core count, for both modes,
	// the best PS×PT point beats space-only.
	seen := 0
	for _, c := range res.Crossovers {
		if c.Cores != big {
			continue
		}
		seen++
		if c.BestPT <= 1 || c.TBest >= c.TSpaceOnly {
			t.Fatalf("no space-time crossover at %d cores (%s): best PT=%d %.4g vs space-only %.4g",
				c.Cores, c.Mode, c.BestPT, c.TBest, c.TSpaceOnly)
		}
	}
	if seen != 2 {
		t.Fatalf("crossover summary has %d modes at %d cores, want 2", seen, big)
	}
	if res.Headline.Cores != big || res.Headline.Speedup <= 1 {
		t.Fatalf("headline crossover malformed: %+v", res.Headline)
	}
}

func TestScalingLaneExecutedGrid(t *testing.T) {
	cfg := laneConfig()
	grid, _ := experiments.Fig5XTGrid(cfg)
	if len(grid) != 2*len(cfg.GridPTs) {
		t.Fatalf("executed grid ran %d points, want %d", len(grid), 2*len(cfg.GridPTs))
	}
	for _, p := range grid {
		if p.VTTotal <= 0 {
			t.Fatalf("grid point PT=%d PS=%d (%s) has no modeled time", p.PT, p.PS, p.Mode)
		}
		if p.PT*p.PS != cfg.GridRanks {
			t.Fatalf("grid point PT=%d PS=%d does not use the fixed rank budget %d", p.PT, p.PS, cfg.GridRanks)
		}
		if p.PT > 1 && p.SpeedupVsSpaceOnly <= 0 {
			t.Fatalf("grid point PT=%d PS=%d (%s) missing the space-only comparison", p.PT, p.PS, p.Mode)
		}
	}
}
