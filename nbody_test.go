package nbody

import (
	"math"
	"testing"
)

func TestKernelLookup(t *testing.T) {
	for _, name := range []string{"algebraic2", "algebraic4", "algebraic6", "gaussian"} {
		k, err := Kernel(name)
		if err != nil || k.Name() != name {
			t.Fatalf("Kernel(%q): %v %v", name, k, err)
		}
	}
	if _, err := Kernel("bogus"); err == nil {
		t.Fatal("expected error for unknown kernel")
	}
}

func TestSystemBuilders(t *testing.T) {
	if s := VortexSheet(100); s.N() != 100 || s.Sigma <= 0 {
		t.Fatal("VortexSheet")
	}
	if s := ScaledVortexSheet(100); math.Abs(s.Sigma-0.6565) > 0.01 {
		t.Fatalf("ScaledVortexSheet sigma %v", s.Sigma)
	}
	if s := CoulombCloud(64, 1); s.N() != 64 {
		t.Fatal("CoulombCloud")
	}
	if s := RandomBlob(10, 0.5, 1); s.N() != 10 || s.Sigma != 0.5 {
		t.Fatal("RandomBlob")
	}
}

func TestSimulationRK2MatchesSDCClosely(t *testing.T) {
	// Both integrators advance the same sheet; over a short horizon
	// their results must agree to integration accuracy.
	a := ScaledVortexSheet(200)
	b := a.Clone()

	simA := NewSimulation(a)
	simA.Integrator = RK(2)
	simA.Solver = NewDirectSolver()
	if err := simA.Run(0, 1, 4); err != nil {
		t.Fatal(err)
	}

	simB := NewSimulation(b)
	simB.Integrator = SDC(3, 4)
	simB.Solver = NewDirectSolver()
	if err := simB.Run(0, 1, 4); err != nil {
		t.Fatal(err)
	}

	maxDiff := 0.0
	for i := range a.Particles {
		maxDiff = math.Max(maxDiff, a.Particles[i].Pos.Sub(b.Particles[i].Pos).Norm())
	}
	if maxDiff == 0 {
		t.Fatal("integrators produced identical states — suspicious")
	}
	if maxDiff > 1e-4 {
		t.Fatalf("RK2 and SDC(4) diverge by %g", maxDiff)
	}
}

func TestSimulationOnStepCallback(t *testing.T) {
	sys := ScaledVortexSheet(50)
	sim := NewSimulation(sys)
	sim.Solver = NewTreeSolver(0.5)
	var times []float64
	sim.OnStep = func(tt float64, s *System) {
		times = append(times, tt)
	}
	if err := sim.Run(0, 2, 4); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 || times[0] != 0.5 || times[3] != 2 {
		t.Fatalf("callback times %v", times)
	}
}

func TestSimulationValidation(t *testing.T) {
	sim := NewSimulation(ScaledVortexSheet(10))
	if err := sim.Run(0, 1, 0); err == nil {
		t.Fatal("expected error for 0 steps")
	}
	sim.Integrator = RK(9)
	if err := sim.Run(0, 1, 1); err == nil {
		t.Fatal("expected error for RK order 9")
	}
	sim.Integrator = Integrator{kind: "nope"}
	if err := sim.Run(0, 1, 1); err == nil {
		t.Fatal("expected error for unknown integrator")
	}
}

func TestRunSpaceTimeFacade(t *testing.T) {
	sys := ScaledVortexSheet(128)
	cfg := DefaultSpaceTime(2, 2)
	cfg.Iterations = 4
	got, stats, err := RunSpaceTime(cfg, sys, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != sys.N() {
		t.Fatalf("gathered %d particles, want %d", got.N(), sys.N())
	}
	if stats.LastSliceResidual <= 0 {
		t.Fatalf("missing residual: %+v", stats)
	}
	if stats.FineEvals == 0 || stats.CoarseEvals == 0 {
		t.Fatalf("missing eval counts: %+v", stats)
	}

	// Must agree with the serial reference (direct SDC).
	ref := sys.Clone()
	sim := NewSimulation(ref)
	sim.Solver = NewDirectSolver()
	sim.Integrator = SDC(3, 8)
	if err := sim.Run(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i := range got.Particles {
		maxDiff = math.Max(maxDiff, got.Particles[i].Pos.Sub(ref.Particles[i].Pos).Norm())
	}
	if maxDiff > 1e-3 {
		t.Fatalf("space-time facade deviates from serial reference by %g", maxDiff)
	}
}

func TestRunSpaceTimeModeledClock(t *testing.T) {
	sys := ScaledVortexSheet(96)
	cfg := DefaultSpaceTime(2, 2)
	cfg.Modeled = true
	_, stats, err := RunSpaceTime(cfg, sys, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModeledSeconds <= 0 {
		t.Fatalf("modeled time missing: %+v", stats)
	}
}

func TestRunSpaceParallel(t *testing.T) {
	sys := ScaledVortexSheet(100)
	got, vt, err := RunSpaceParallel(2, 0, 4, true, sys, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vt <= 0 {
		t.Fatal("modeled time missing")
	}
	ref := sys.Clone()
	sim := NewSimulation(ref)
	sim.Solver = NewDirectSolver()
	sim.Integrator = SDC(3, 4)
	if err := sim.Run(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i := range got.Particles {
		maxDiff = math.Max(maxDiff, got.Particles[i].Pos.Sub(ref.Particles[i].Pos).Norm())
	}
	if maxDiff > 1e-10 {
		t.Fatalf("space-parallel (θ=0) deviates from serial direct by %g", maxDiff)
	}
}

func TestRunSpaceTimeValidation(t *testing.T) {
	sys := ScaledVortexSheet(16)
	if _, _, err := RunSpaceTime(SpaceTimeConfig{PT: 0, PS: 1}, sys, 0, 1, 1); err == nil {
		t.Fatal("expected PT validation error")
	}
	if _, _, err := RunSpaceParallel(0, 0.3, 4, false, sys, 0, 1, 1); err == nil {
		t.Fatal("expected PS validation error")
	}
}

func TestDiagnoseFacade(t *testing.T) {
	d := Diagnose(ScaledVortexSheet(500))
	if math.Abs(d.LinearImpulse.Z+0.5) > 1e-3 {
		t.Fatalf("impulse %v", d.LinearImpulse)
	}
}

func TestCheckpointFacade(t *testing.T) {
	sys := ScaledVortexSheet(50)
	path := t.TempDir() + "/s.nbck"
	if err := SaveCheckpoint(path, sys); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 50 || got.Sigma != sys.Sigma {
		t.Fatal("round trip failed")
	}
}

func TestRemeshFacade(t *testing.T) {
	sys := ScaledVortexSheet(300)
	out, st := Remesh(sys, RemeshConfig{H: 0.15})
	if out.N() == 0 || st.Before != 300 {
		t.Fatalf("remesh stats %+v", st)
	}
	dBefore := Diagnose(sys).LinearImpulse
	dAfter := Diagnose(out).LinearImpulse
	if dAfter.Sub(dBefore).Norm() > 1e-12 {
		t.Fatal("remesh broke impulse conservation")
	}
}

func TestFarFieldSolverFacade(t *testing.T) {
	sys := ScaledVortexSheet(200)
	sim := NewSimulation(sys)
	sim.Solver = NewFarFieldSolver(0.4, 3)
	if err := sim.Run(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	d := Diagnose(sys)
	if d.Centroid.Z >= 0 {
		t.Fatalf("sheet did not descend under far-field solver: %v", d.Centroid.Z)
	}
}

func TestDiagnoseFlowFacade(t *testing.T) {
	sys := ScaledVortexSheet(150)
	vel := make([]Vec3, sys.N())
	str := make([]Vec3, sys.N())
	NewDirectSolver().Eval(sys, vel, str)
	fd := DiagnoseFlow(sys, vel)
	if fd.KineticEnergy <= 0 {
		t.Fatalf("kinetic energy %v should be positive", fd.KineticEnergy)
	}
	if math.Abs(fd.Helicity) > 1e-3 {
		t.Fatalf("sheet helicity %v should vanish by symmetry", fd.Helicity)
	}
	if fd.Enstrophy <= 0 {
		t.Fatal("enstrophy must be positive")
	}
}

func TestGravitySimulationFacade(t *testing.T) {
	// Equal-mass binary on a circular orbit returns home after one
	// period (direct gravity, θ=0).
	sys := &System{Sigma: 0.01, Particles: []Particle{
		{Pos: V3(-0.5, 0, 0), Charge: 1, Vol: 1},
		{Pos: V3(0.5, 0, 0), Charge: 1, Vol: 1},
	}}
	v := math.Sqrt(0.5)
	vel := []Vec3{V3(0, -v, 0), V3(0, v, 0)}
	start := sys.Clone()
	g := NewGravitySimulation(sys, vel)
	g.Theta, g.Eps = 0, 0
	period := 2 * math.Pi * 0.5 / v
	steps := 0
	g.OnStep = func(tt float64, s *System, vv []Vec3) { steps++ }
	if err := g.Run(0, period, 64); err != nil {
		t.Fatal(err)
	}
	if steps != 64 {
		t.Fatalf("OnStep ran %d times", steps)
	}
	for i := range sys.Particles {
		if d := sys.Particles[i].Pos.Sub(start.Particles[i].Pos).Norm(); d > 1e-4 {
			t.Fatalf("body %d displaced %g after a period", i, d)
		}
	}
	// Validation errors.
	if err := g.Run(0, 1, 0); err == nil {
		t.Fatal("expected nsteps error")
	}
	g.Vel = vel[:1]
	if err := g.Run(0, 1, 1); err == nil {
		t.Fatal("expected velocity-length error")
	}
}
