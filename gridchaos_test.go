package nbody

// Full-grid chaos property sweep (ISSUE 8): the space-time solver at
// PS > 1 under seeded crash plans, alone and composed with the guard's
// bit-flip injection. The property: every run either completes —
// bitwise identical for transient-only plans, within the documented
// degraded bound when ranks died — or returns a typed abort. Hangs and
// silent wrong answers are the forbidden outcomes (the in-process MPI
// deadlock detector converts a hang into an error, so plain test
// completion checks the former).

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/guard"
)

// gridDeviation is the acceptance bound for degraded completion after
// rank deaths: recovery re-decomposes onto fewer spatial ranks (or
// serial SDC), which is scientifically consistent but not bitwise.
const gridDeviation = 1e-4

func maxPosDev(a, b *System) float64 {
	var maxd float64
	for i := range a.Particles {
		if d := a.Particles[i].Pos.Sub(b.Particles[i].Pos).Norm(); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// TestFacadeGridCrashSpatialShrink: one rank of a 2×2 grid dies between
// blocks; its column still has a live replica, so recovery shrinks the
// spatial width to 1 and redistributes in memory — no checkpoint needed.
func TestFacadeGridCrashSpatialShrink(t *testing.T) {
	sys := RandomBlob(32, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(2, 2)
	cfg.Resilience.FaultPlan = "crash=3@block:2"
	cfg.Telemetry = true
	out, stats, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatalf("grid crash not survived: %v", err)
	}
	if d := maxPosDev(clean, out); d > gridDeviation {
		t.Fatalf("degraded grid run diverges by %g (> %g)", d, gridDeviation)
	}
	if stats.Run.Counter(core.CounterRecoveryRounds) == 0 {
		t.Fatal("no recovery rounds recorded after a crash")
	}
	if stats.Run.Counter("pfasst.block_restarts") == 0 {
		t.Fatal("no block restart recorded after a crash")
	}
	if stats.Run.Counter("fault.degraded_blocks") == 0 {
		t.Fatal("no degraded blocks recorded after a spatial shrink")
	}
}

// TestFacadeGridCrashMidAttempt: the death hits inside the block attempt
// (predictor / iteration fault points), so survivors are woken out of
// deadline receives and revoked spatial collectives, not caught at a
// clean block boundary.
func TestFacadeGridCrashMidAttempt(t *testing.T) {
	sys := RandomBlob(32, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []string{"crash=2@iter:1", "crash=1@predictor:0"} {
		cfg := chaosConfig(2, 2)
		cfg.Resilience.FaultPlan = plan
		out, _, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
		if err != nil {
			t.Fatalf("%s: not survived: %v", plan, err)
		}
		if d := maxPosDev(clean, out); d > gridDeviation {
			t.Fatalf("%s: diverges by %g", plan, d)
		}
	}
}

// TestFacadeGridColumnLossCheckpointRestore: BOTH holders of spatial
// column 1 die at once, so no in-memory replica survives. With a
// checkpoint directory the committed block restores from disk and is
// re-decomposed onto the shrunken grid; without one the run must abort
// with the typed ErrStateLost — never hang, never fabricate state.
func TestFacadeGridColumnLossCheckpointRestore(t *testing.T) {
	sys := RandomBlob(32, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(2, 2)
	cfg.Resilience.FaultPlan = "crash=1@block:2,crash=3@block:2"
	cfg.Resilience.CheckpointDir = t.TempDir()
	out, _, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatalf("column loss with checkpoint not survived: %v", err)
	}
	if d := maxPosDev(clean, out); d > gridDeviation {
		t.Fatalf("checkpoint-restored run diverges by %g", d)
	}

	cfg = chaosConfig(2, 2)
	cfg.Resilience.FaultPlan = "crash=1@block:2,crash=3@block:2"
	if _, _, err := RunSpaceTime(cfg, sys, 0, 0.2, 4); !errors.Is(err, core.ErrStateLost) {
		t.Fatalf("column loss without checkpoint: want ErrStateLost, got %v", err)
	}
}

// TestFacadeGridGuardResilienceCleanBitwise: guard + resilience at
// PS > 1 with a purely transient chaos plan AND seeded bit flips must
// reproduce the clean run bitwise — redo-after-corruption rebuilds the
// same grid at the same width, and the transport layer absorbs the
// losses.
func TestFacadeGridGuardResilienceCleanBitwise(t *testing.T) {
	sys := RandomBlob(32, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(2, 2)
	cfg.Resilience.FaultPlan = "drop=0.05,corrupt=0.03"
	cfg.Resilience.FaultSeed = 5
	cfg.Guard.Enabled = true
	// Top-exponent-bit flips are always caught by the magnitude scan,
	// and this seed injects at attempt 0 of each block with a clean
	// retry inside the budget — every flip is detected, redone, and
	// the final state matches the clean run bitwise.
	cfg.Guard.FlipPlan = "rate=5e-3,in=block,bits=62-62"
	cfg.Guard.FlipSeed = 5
	cfg.Telemetry = true
	out, stats, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		var v *guard.Violation
		if errors.As(err, &v) {
			t.Skipf("ladder exhausted under this seed (typed abort): %v", err)
		}
		t.Fatalf("guard+resilience chaos at PS>1 failed untyped: %v", err)
	}
	for i := range clean.Particles {
		if clean.Particles[i] != out.Particles[i] {
			t.Fatalf("transient guard+resilience chaos changed particle %d", i)
		}
	}
	if stats.Run.Counter(guard.CounterInjected) == 0 {
		t.Fatal("no guard flips recorded despite a flip plan")
	}
}

// TestFacadeGridGuardCrashInterleaving is the composition sweep: seeded
// block corruption forcing guard redos, plus a rank crash placed before
// / during / after the redo window. Acceptable outcomes per case:
// bounded-deviation completion or a typed abort (guard violation or
// state loss). Hangs and silent divergence fail the property.
func TestFacadeGridGuardCrashInterleaving(t *testing.T) {
	sys := RandomBlob(32, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plans := []string{
		"crash=3@block:0",     // before the first attempt commits
		"crash=3@block:2",     // between blocks, after a guarded commit
		"crash=2@iter:1",      // mid-attempt, racing a possible redo
		"crash=1@predictor:0", // at attempt start
	}
	for _, plan := range plans {
		cfg := chaosConfig(2, 2)
		cfg.Resilience.FaultPlan = plan
		cfg.Guard.Enabled = true
		cfg.Guard.FlipPlan = "rate=5e-3,in=block,bits=62-62"
		cfg.Guard.FlipSeed = 5
		out, _, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
		if err != nil {
			var v *guard.Violation
			if errors.As(err, &v) || errors.Is(err, core.ErrStateLost) {
				continue // typed abort: acceptable outcome
			}
			t.Fatalf("%s: untyped failure: %v", plan, err)
		}
		if d := maxPosDev(clean, out); d > gridDeviation {
			t.Fatalf("%s: silent divergence %g", plan, d)
		}
	}
}

// TestFacadeGridCrash4x2Shrink: the wider 4×2 grid loses ranks in two
// different time slices at once; recovery shrinks the spatial width
// once for both and completes degraded.
func TestFacadeGridCrash4x2Shrink(t *testing.T) {
	sys := RandomBlob(32, 0.2, 7)
	clean, _, err := RunSpaceTime(chaosConfig(4, 2), sys, 0, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(4, 2)
	cfg.Resilience.FaultPlan = "crash=5@block:0,crash=7@iter:0"
	out, _, err := RunSpaceTime(cfg, sys, 0, 0.2, 4)
	if err != nil {
		t.Fatalf("double crash on 4×2 not survived: %v", err)
	}
	if d := maxPosDev(clean, out); d > gridDeviation {
		t.Fatalf("4×2 degraded run diverges by %g", d)
	}
}

// TestFacadeGridCheckpointResumeAcrossPS: a grid checkpoint written at
// PS=2 resumes onto a PS=3 run — restore re-decomposes the full state
// onto whatever width the resuming run has (the same code path crash
// recovery uses). A resume whose checkpoint already covers every step
// must return the checkpointed state unchanged.
func TestFacadeGridCheckpointResumeAcrossPS(t *testing.T) {
	sys := RandomBlob(33, 0.2, 7) // not divisible by 2 or 3: uneven shares
	dir := t.TempDir()

	cfg := chaosConfig(2, 2)
	cfg.Resilience.CheckpointDir = dir
	if _, _, err := RunSpaceTime(cfg, sys, 0, 0.2, 4); err != nil {
		t.Fatal(err)
	}

	// Resume the second half on a grid with a different spatial width.
	cfg = chaosConfig(2, 3)
	cfg.Resilience.CheckpointDir = dir
	cfg.Resilience.Resume = true
	out, _, err := RunSpaceTime(cfg, sys, 0, 0.4, 8)
	if err != nil {
		t.Fatalf("resume onto PS=3 failed: %v", err)
	}
	full, _, err := RunSpaceTime(chaosConfig(2, 2), sys, 0, 0.4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxPosDev(full, out); d > gridDeviation {
		t.Fatalf("PS-crossing resume diverges by %g", d)
	}

	// Already-complete resume: the checkpoint written by the resumed
	// run covers all 8 steps, so this run executes zero blocks and must
	// still hand back the checkpointed state (bitwise vs the run that
	// wrote it).
	cfg = chaosConfig(2, 2)
	cfg.Resilience.CheckpointDir = dir
	cfg.Resilience.Resume = true
	same, _, err := RunSpaceTime(cfg, sys, 0, 0.4, 8)
	if err != nil {
		t.Fatalf("no-op resume failed: %v", err)
	}
	for i := range out.Particles {
		if out.Particles[i] != same.Particles[i] {
			t.Fatalf("no-op resume changed particle %d", i)
		}
	}
}
